//! The serverless platform: spawning, invoking, pinging, reclaiming, billing.
//!
//! Economics and failure model follow the InfiniCache/InfiniStore
//! measurements the paper builds on (§4.5):
//!
//! * warm function memory is free between invocations;
//! * invocations bill per GB-second plus a per-request fee;
//! * a warm sandbox is reclaimed after an idle TTL without activity, so
//!   FLStore pings instances every minute (~$0.0087 per instance-month);
//! * even pinged sandboxes are force-reclaimed on a heavy-tailed schedule,
//!   which is what the fault-tolerance experiments (Figs. 13–14) inject.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use flstore_cloud::blob::{Blob, ObjectKey, OpReceipt};
use flstore_cloud::compute::WorkUnits;
use flstore_cloud::pricing::FunctionPricing;
use flstore_sim::bytes::ByteSize;
use flstore_sim::cost::{Cost, CostBreakdown};
use flstore_sim::rng::DetRng;
use flstore_sim::time::{SimDuration, SimTime};

use crate::function::{FunctionConfig, FunctionError, FunctionId, FunctionInstance, ReclaimCause};

/// Forced-reclamation model: Pareto (heavy-tail) sandbox lifetimes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReclaimModel {
    /// Whether forced reclamation happens at all.
    pub enabled: bool,
    /// Minimum sandbox lifetime in hours (Pareto scale).
    pub min_lifetime_hours: f64,
    /// Pareto tail index; smaller = heavier tail = more long-lived outliers.
    pub alpha: f64,
}

// Hand-written (rather than derived) because `DISABLED` carries an
// unbounded lifetime: JSON has no Infinity, so a non-finite
// `min_lifetime_hours` is encoded as null and decoded back to infinity.
impl Serialize for ReclaimModel {
    fn to_value(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert("enabled".into(), self.enabled.to_value());
        let lifetime = if self.min_lifetime_hours.is_finite() {
            self.min_lifetime_hours.to_value()
        } else {
            serde::Value::Null
        };
        map.insert("min_lifetime_hours".into(), lifetime);
        map.insert("alpha".into(), self.alpha.to_value());
        serde::Value::Object(map)
    }
}

impl Deserialize for ReclaimModel {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| serde::Error::custom(format!("missing field {name}")))
        };
        let lifetime = match field("min_lifetime_hours")? {
            serde::Value::Null => f64::INFINITY,
            v => f64::from_value(v)?,
        };
        Ok(ReclaimModel {
            enabled: bool::from_value(field("enabled")?)?,
            min_lifetime_hours: lifetime,
            alpha: f64::from_value(field("alpha")?)?,
        })
    }
}

impl ReclaimModel {
    /// No forced reclamation (scalability experiments isolate queueing).
    pub const DISABLED: ReclaimModel = ReclaimModel {
        enabled: false,
        min_lifetime_hours: f64::INFINITY,
        alpha: 1.0,
    };

    /// Lifetimes observed for AWS Lambda-class platforms: most sandboxes
    /// survive several hours, a heavy tail survives much longer.
    pub const LAMBDA_MEASURED: ReclaimModel = ReclaimModel {
        enabled: true,
        min_lifetime_hours: 6.0,
        alpha: 1.1,
    };

    /// An aggressive fault-injection profile for the fault-tolerance
    /// experiments: sandboxes die every couple of hours on average.
    pub const FAULT_INJECTION: ReclaimModel = ReclaimModel {
        enabled: true,
        min_lifetime_hours: 1.0,
        alpha: 1.5,
    };

    fn sample_deadline(&self, now: SimTime, rng: &mut DetRng) -> SimTime {
        if !self.enabled {
            return SimTime::MAX;
        }
        let hours = rng.pareto(self.min_lifetime_hours, self.alpha);
        // Cap at 10x the horizon of any experiment to avoid overflow noise.
        let hours = hours.min(10_000.0);
        now + SimDuration::from_hours_f64(hours)
    }
}

/// Platform-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Billing rates.
    pub pricing: FunctionPricing,
    /// Sandbox boot time paid on the first invocation after (re)deployment.
    pub cold_start: SimDuration,
    /// Idle window after which an unpinged sandbox is reclaimed.
    pub idle_ttl: SimDuration,
    /// Interval between keep-alive pings (the paper pings every minute).
    pub keepalive_interval: SimDuration,
    /// Duration billed per keep-alive ping.
    pub ping_duration: SimDuration,
    /// Forced-reclamation model.
    pub reclaim: ReclaimModel,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            pricing: FunctionPricing::AWS_LAMBDA,
            cold_start: SimDuration::from_millis(400),
            idle_ttl: SimDuration::from_mins(10),
            keepalive_interval: SimDuration::from_mins(1),
            ping_duration: SimDuration::from_millis(3),
            reclaim: ReclaimModel::LAMBDA_MEASURED,
        }
    }
}

/// Outcome of one invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvokeOutcome {
    /// When execution began (after queueing and any cold start).
    pub start: SimTime,
    /// When execution finished.
    pub end: SimTime,
    /// Time spent waiting for the instance's worker.
    pub queue_wait: SimDuration,
    /// Whether a cold start was paid.
    pub cold_start: bool,
    /// Whether the sandbox had been reclaimed since last contact, losing
    /// its cached objects (and why).
    pub state_lost: Option<ReclaimCause>,
    /// Latency and cost of the invocation itself.
    pub receipt: OpReceipt,
}

/// Cumulative platform billing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PlatformBilling {
    /// Invocations served (excluding pings).
    pub invocations: u64,
    /// Keep-alive pings issued.
    pub pings: u64,
    /// GB-seconds billed for invocations.
    pub gb_seconds: f64,
    /// Dollars billed for invocations.
    pub invocation_cost: Cost,
    /// Dollars billed for keep-alive pings.
    pub keepalive_cost: Cost,
}

impl PlatformBilling {
    /// Total dollars billed.
    pub fn total(&self) -> Cost {
        self.invocation_cost + self.keepalive_cost
    }
}

/// Errors raised by platform operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// The referenced function id was never spawned.
    UnknownFunction(FunctionId),
    /// Instance-level failure (e.g. out of memory).
    Function(FunctionError),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownFunction(id) => write!(f, "unknown function: {id}"),
            PlatformError::Function(e) => write!(f, "{e}"),
        }
    }
}

impl Error for PlatformError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlatformError::Function(e) => Some(e),
            PlatformError::UnknownFunction(_) => None,
        }
    }
}

impl From<FunctionError> for PlatformError {
    fn from(e: FunctionError) -> Self {
        PlatformError::Function(e)
    }
}

/// A serverless function platform on the virtual clock.
///
/// # Examples
///
/// ```
/// use flstore_serverless::platform::{Platform, PlatformConfig};
/// use flstore_serverless::function::FunctionConfig;
/// use flstore_cloud::compute::WorkUnits;
/// use flstore_sim::time::SimTime;
///
/// let mut platform = Platform::new(PlatformConfig::default(), 42);
/// let id = platform.spawn(SimTime::ZERO, FunctionConfig::LARGE);
/// let out = platform
///     .invoke(SimTime::ZERO, id, WorkUnits::from_ref_seconds(2.8))
///     .expect("function exists");
/// assert!(out.cold_start); // first invocation boots the sandbox
/// ```
#[derive(Debug, Clone)]
pub struct Platform {
    cfg: PlatformConfig,
    rng: DetRng,
    instances: HashMap<FunctionId, FunctionInstance>,
    spawn_order: Vec<FunctionId>,
    next_id: u64,
    cold: HashMap<FunctionId, bool>,
    billing: PlatformBilling,
}

impl Platform {
    /// Creates a platform with deterministic randomness derived from `seed`.
    pub fn new(cfg: PlatformConfig, seed: u64) -> Self {
        Platform {
            cfg,
            rng: DetRng::stream(seed, "serverless-platform"),
            instances: HashMap::new(),
            spawn_order: Vec::new(),
            next_id: 0,
            cold: HashMap::new(),
            billing: PlatformBilling::default(),
        }
    }

    /// The platform configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.cfg
    }

    /// Spawns a new (cold) function instance.
    pub fn spawn(&mut self, now: SimTime, config: FunctionConfig) -> FunctionId {
        let id = FunctionId::from_raw(self.next_id);
        self.next_id += 1;
        let deadline = self.cfg.reclaim.sample_deadline(now, &mut self.rng);
        self.instances
            .insert(id, FunctionInstance::new(id, config, now, deadline));
        self.spawn_order.push(id);
        self.cold.insert(id, true);
        id
    }

    /// Number of spawned instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Ids in spawn order.
    pub fn instance_ids(&self) -> &[FunctionId] {
        &self.spawn_order
    }

    /// Borrows an instance.
    pub fn instance(&self, id: FunctionId) -> Option<&FunctionInstance> {
        self.instances.get(&id)
    }

    /// Total bytes cached across all instances.
    pub fn total_cached(&self) -> ByteSize {
        self.instances.values().map(|i| i.mem_used()).sum()
    }

    /// Cumulative billing.
    pub fn billing(&self) -> PlatformBilling {
        self.billing
    }

    /// Checks liveness of `id` at `now`, applying idle-TTL and forced
    /// reclamation. Returns the cause if the sandbox was reclaimed (its
    /// cached objects are gone and the next invocation pays a cold start).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownFunction`] for unspawned ids.
    pub fn refresh(
        &mut self,
        now: SimTime,
        id: FunctionId,
    ) -> Result<Option<ReclaimCause>, PlatformError> {
        let cfg = self.cfg;
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(PlatformError::UnknownFunction(id))?;
        let cause = if now > inst.reclaim_at() {
            Some(ReclaimCause::Forced)
        } else if now.duration_since(inst.last_activity()) > cfg.idle_ttl {
            Some(ReclaimCause::IdleTimeout)
        } else {
            None
        };
        if cause.is_some() {
            let next = cfg.reclaim.sample_deadline(now, &mut self.rng);
            inst.reclaim(now, next);
            self.cold.insert(id, true);
        }
        Ok(cause)
    }

    /// Invokes `work` on instance `id`, queueing if it is busy.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownFunction`] for unspawned ids.
    pub fn invoke(
        &mut self,
        now: SimTime,
        id: FunctionId,
        work: WorkUnits,
    ) -> Result<InvokeOutcome, PlatformError> {
        let state_lost = self.refresh(now, id)?;
        let cold = self.cold.get(&id).copied().unwrap_or(true);
        let pricing = self.cfg.pricing;
        let cold_start_time = self.cfg.cold_start;
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(PlatformError::UnknownFunction(id))?;

        let service = work.duration_on(inst.config().compute_profile())
            + if cold {
                cold_start_time
            } else {
                SimDuration::ZERO
            };
        let start = now.max(inst.busy_until());
        let end = start + service;
        inst.set_busy_until(end);
        inst.touch(end);
        self.cold.insert(id, false);

        let cost = pricing.invocation(inst.config().memory, service);
        self.billing.invocations += 1;
        self.billing.gb_seconds += inst.config().memory.as_gb_f64() * service.as_secs_f64();
        self.billing.invocation_cost += cost;

        Ok(InvokeOutcome {
            start,
            end,
            queue_wait: start.duration_since(now),
            cold_start: cold,
            state_lost,
            receipt: OpReceipt {
                latency: end.duration_since(now),
                cost: CostBreakdown::compute_only(cost),
            },
        })
    }

    /// Caches `blob` in instance memory (data is assumed to already be at
    /// the function, e.g. delivered by an ingest invocation; transfer costs
    /// are accounted by the caller's data path).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownFunction`] for unspawned ids or
    /// [`PlatformError::Function`] if the object does not fit.
    pub fn store_object(
        &mut self,
        now: SimTime,
        id: FunctionId,
        key: ObjectKey,
        blob: Blob,
    ) -> Result<(), PlatformError> {
        self.refresh(now, id)?;
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(PlatformError::UnknownFunction(id))?;
        inst.store(key, blob)?;
        inst.touch(now);
        self.cold.insert(id, false);
        Ok(())
    }

    /// Evicts a cached object. Returns whether it was present.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::UnknownFunction`] for unspawned ids.
    pub fn evict_object(&mut self, id: FunctionId, key: &ObjectKey) -> Result<bool, PlatformError> {
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(PlatformError::UnknownFunction(id))?;
        Ok(inst.evict(key))
    }

    /// Issues one keep-alive ping to every instance at `now`: refreshes
    /// activity (preventing idle reclamation) and bills the ping.
    ///
    /// Instances whose forced-reclamation deadline has passed are reclaimed
    /// instead of refreshed; their ids are returned.
    pub fn keepalive_tick(&mut self, now: SimTime) -> Vec<FunctionId> {
        let ids: Vec<FunctionId> = self.spawn_order.clone();
        let mut reclaimed = Vec::new();
        for id in ids {
            match self.refresh(now, id) {
                Ok(Some(_)) => reclaimed.push(id),
                Ok(None) => {
                    if let Some(inst) = self.instances.get_mut(&id) {
                        inst.touch(now);
                        let cost = self
                            .cfg
                            .pricing
                            .invocation(inst.config().memory, self.cfg.ping_duration);
                        self.billing.pings += 1;
                        self.billing.keepalive_cost += cost;
                    }
                }
                Err(_) => {}
            }
        }
        reclaimed
    }

    /// Runs keep-alive pings at the configured interval over `[from, to)`.
    /// Returns every (time, id) reclamation observed.
    pub fn run_keepalive(&mut self, from: SimTime, to: SimTime) -> Vec<(SimTime, FunctionId)> {
        let mut events = Vec::new();
        let mut t = from;
        while t < to {
            for id in self.keepalive_tick(t) {
                events.push((t, id));
            }
            t += self.cfg.keepalive_interval;
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_platform() -> Platform {
        Platform::new(
            PlatformConfig {
                reclaim: ReclaimModel::DISABLED,
                ..PlatformConfig::default()
            },
            7,
        )
    }

    #[test]
    fn first_invoke_pays_cold_start() {
        let mut p = quiet_platform();
        let id = p.spawn(SimTime::ZERO, FunctionConfig::LARGE);
        let out = p
            .invoke(SimTime::ZERO, id, WorkUnits::from_ref_seconds(1.0))
            .expect("spawned");
        assert!(out.cold_start);
        assert!((out.receipt.latency.as_secs_f64() - 1.4).abs() < 1e-6);
        let warm = p
            .invoke(out.end, id, WorkUnits::from_ref_seconds(1.0))
            .expect("still alive");
        assert!(!warm.cold_start);
        assert!((warm.receipt.latency.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn busy_instance_queues() {
        let mut p = quiet_platform();
        let id = p.spawn(SimTime::ZERO, FunctionConfig::LARGE);
        let a = p
            .invoke(SimTime::ZERO, id, WorkUnits::from_ref_seconds(5.0))
            .expect("ok");
        let b = p
            .invoke(SimTime::ZERO, id, WorkUnits::from_ref_seconds(5.0))
            .expect("ok");
        assert!(b.queue_wait >= a.end.duration_since(SimTime::ZERO) - SimDuration::from_micros(1));
        assert!(b.start >= a.end);
    }

    #[test]
    fn idle_ttl_reclaims_unpinged_sandbox() {
        let mut p = quiet_platform();
        let id = p.spawn(SimTime::ZERO, FunctionConfig::LARGE);
        p.store_object(
            SimTime::ZERO,
            id,
            ObjectKey::new("a"),
            Blob::synthetic(ByteSize::from_mb(100)),
        )
        .expect("fits");
        // 20 minutes later (> 10 min TTL) the state is gone.
        let late = SimTime::ZERO + SimDuration::from_mins(20);
        let out = p
            .invoke(late, id, WorkUnits::from_ref_seconds(0.1))
            .expect("ok");
        assert_eq!(out.state_lost, Some(ReclaimCause::IdleTimeout));
        assert!(out.cold_start);
        assert_eq!(p.instance(id).expect("exists").object_count(), 0);
    }

    #[test]
    fn keepalive_prevents_idle_reclaim_and_bills() {
        let mut p = quiet_platform();
        let id = p.spawn(SimTime::ZERO, FunctionConfig::LARGE);
        p.store_object(
            SimTime::ZERO,
            id,
            ObjectKey::new("a"),
            Blob::synthetic(ByteSize::from_mb(100)),
        )
        .expect("fits");
        let hour = SimTime::ZERO + SimDuration::from_hours(1);
        let reclaimed = p.run_keepalive(SimTime::ZERO, hour);
        assert!(reclaimed.is_empty());
        let out = p
            .invoke(hour, id, WorkUnits::from_ref_seconds(0.1))
            .expect("ok");
        assert_eq!(out.state_lost, None);
        assert!(!out.cold_start);
        assert_eq!(p.instance(id).expect("exists").object_count(), 1);
        assert_eq!(p.billing().pings, 60);
        assert!(p.billing().keepalive_cost.as_dollars() > 0.0);
    }

    #[test]
    fn ping_cost_matches_paper_scale() {
        // One 4 GB instance pinged every minute for a month should cost on
        // the order of $0.01 (the paper quotes $0.0087/month).
        let mut p = quiet_platform();
        p.spawn(SimTime::ZERO, FunctionConfig::LARGE);
        let month = SimTime::ZERO + SimDuration::from_hours(730);
        p.run_keepalive(SimTime::ZERO, month);
        let cost = p.billing().keepalive_cost.as_dollars();
        assert!((0.004..0.03).contains(&cost), "monthly ping cost {cost}");
    }

    #[test]
    fn forced_reclaim_fires_with_aggressive_model() {
        let mut p = Platform::new(
            PlatformConfig {
                reclaim: ReclaimModel {
                    enabled: true,
                    min_lifetime_hours: 0.05,
                    alpha: 3.0,
                },
                ..PlatformConfig::default()
            },
            11,
        );
        for _ in 0..20 {
            p.spawn(SimTime::ZERO, FunctionConfig::SMALL);
        }
        let day = SimTime::ZERO + SimDuration::from_hours(24);
        let events = p.run_keepalive(SimTime::ZERO, day);
        assert!(
            !events.is_empty(),
            "aggressive model should reclaim sandboxes"
        );
    }

    #[test]
    fn unknown_function_errors() {
        let mut p = quiet_platform();
        let missing = FunctionId::from_raw(999);
        assert_eq!(
            p.invoke(SimTime::ZERO, missing, WorkUnits::ZERO)
                .unwrap_err(),
            PlatformError::UnknownFunction(missing)
        );
    }

    #[test]
    fn billing_accumulates_gb_seconds() {
        let mut p = quiet_platform();
        let id = p.spawn(SimTime::ZERO, FunctionConfig::LARGE);
        p.invoke(SimTime::ZERO, id, WorkUnits::from_ref_seconds(2.6))
            .expect("ok");
        // 4 GB * (2.6 s + 0.4 s cold start) = 12 GB-s.
        assert!((p.billing().gb_seconds - 12.0).abs() < 1e-6);
        assert_eq!(p.billing().invocations, 1);
        assert!(p.billing().total().as_dollars() > 0.0);
    }
}
