//! Property-based invariants for the cloud service simulators.

use proptest::prelude::*;

use flstore_cloud::blob::{Blob, ObjectKey};
use flstore_cloud::memcache::{MemCache, MemCacheConfig};
use flstore_cloud::network::NetworkProfile;
use flstore_cloud::objstore::ObjectStore;
use flstore_cloud::pricing::CacheNodePricing;
use flstore_sim::bytes::ByteSize;
use flstore_sim::time::SimTime;

proptest! {
    #[test]
    fn transfer_time_is_monotone_in_bytes(a in 0u64..10_000_000_000, b in 0u64..10_000_000_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for profile in [
            NetworkProfile::OBJECT_STORE,
            NetworkProfile::MEM_CACHE,
            NetworkProfile::INTRA_CLOUD,
            NetworkProfile::CLIENT_WAN,
        ] {
            prop_assert!(
                profile.transfer_time(ByteSize::from_bytes(lo))
                    <= profile.transfer_time(ByteSize::from_bytes(hi))
            );
        }
    }

    #[test]
    fn objstore_tracks_bytes_exactly(sizes in prop::collection::vec(0u64..1_000_000_000, 1..30)) {
        let mut store = ObjectStore::default();
        let mut expected = 0u64;
        for (i, size) in sizes.iter().enumerate() {
            store.put_async(SimTime::ZERO, ObjectKey::new(format!("k{i}")),
                            Blob::synthetic(ByteSize::from_bytes(*size)));
            expected += size;
        }
        prop_assert_eq!(store.bytes_stored().as_bytes(), expected);
        prop_assert_eq!(store.len(), sizes.len());
        // Deleting everything returns to zero.
        for i in 0..sizes.len() {
            store.delete(SimTime::ZERO, &ObjectKey::new(format!("k{i}")));
        }
        prop_assert_eq!(store.bytes_stored(), ByteSize::ZERO);
        prop_assert!(store.is_empty());
    }

    #[test]
    fn objstore_get_returns_what_was_put(size in 0u64..1_000_000_000) {
        let mut store = ObjectStore::default();
        let key = ObjectKey::new("object");
        store.put_async(SimTime::ZERO, key.clone(), Blob::synthetic(ByteSize::from_bytes(size)));
        let (blob, receipt) = store.get(SimTime::ZERO, &key).expect("present");
        prop_assert_eq!(blob.logical_size().as_bytes(), size);
        prop_assert!(receipt.latency >= NetworkProfile::OBJECT_STORE.transfer_time(ByteSize::ZERO));
    }

    #[test]
    fn memcache_never_exceeds_capacity(
        capacity_mb in 10u64..200,
        sizes in prop::collection::vec(1u64..100, 1..50),
    ) {
        let cfg = MemCacheConfig {
            node: CacheNodePricing {
                capacity: ByteSize::from_mb(capacity_mb),
                per_node_hour: 1.0,
            },
            nodes: 1,
            ..MemCacheConfig::default()
        };
        let mut cache = MemCache::new(cfg, SimTime::ZERO);
        for (i, size) in sizes.iter().enumerate() {
            cache.set(SimTime::ZERO, ObjectKey::new(format!("k{i}")),
                      Blob::synthetic(ByteSize::from_mb(*size)));
            prop_assert!(cache.used() <= cache.capacity(),
                "used {} exceeds capacity {}", cache.used(), cache.capacity());
        }
    }

    #[test]
    fn memcache_hits_after_set_within_capacity(size_mb in 1u64..50) {
        let mut cache = MemCache::new(MemCacheConfig::default(), SimTime::ZERO);
        let key = ObjectKey::new("hot");
        cache.set(SimTime::ZERO, key.clone(), Blob::synthetic(ByteSize::from_mb(size_mb)));
        let got = cache.get(SimTime::ZERO, &key);
        prop_assert!(got.is_some());
        prop_assert_eq!(got.expect("hit").0.logical_size(), ByteSize::from_mb(size_mb));
    }

    #[test]
    fn batch_transfer_never_beats_payload_time(
        requests in 1usize..50,
        total in 0u64..10_000_000_000,
        parallelism in 1usize..32,
    ) {
        let bytes = ByteSize::from_bytes(total);
        for profile in [NetworkProfile::OBJECT_STORE, NetworkProfile::MEM_CACHE] {
            let t = profile.batch_transfer_time(requests, bytes, parallelism);
            prop_assert!(t >= profile.payload_time(bytes));
        }
    }
}
