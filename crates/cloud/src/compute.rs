//! Compute-time modeling.
//!
//! Workloads declare their demand as [`WorkUnits`] — seconds on the paper's
//! reference measurement platform (a 2-vCPU serverless function). Executors
//! (functions of various sizes, the aggregator VM) scale that demand by
//! their [`ComputeProfile`]. Keeping demand and capability separate lets the
//! same workload implementation run on every architecture in the evaluation.

use serde::{Deserialize, Serialize};

use flstore_sim::time::SimDuration;

/// Compute demand, in seconds on the reference 2-vCPU function.
///
/// # Examples
///
/// ```
/// use flstore_cloud::compute::{ComputeProfile, WorkUnits};
///
/// let clustering = WorkUnits::from_ref_seconds(6.0);
/// let on_function = clustering.duration_on(ComputeProfile::FUNCTION_2CORE);
/// let on_vm = clustering.duration_on(ComputeProfile::VM_16CORE);
/// assert!(on_vm < on_function); // the big VM is somewhat faster
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct WorkUnits(f64);

impl WorkUnits {
    /// Zero work.
    pub const ZERO: WorkUnits = WorkUnits(0.0);

    /// Creates a demand of `secs` reference seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_ref_seconds(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "work must be finite and non-negative, got {secs}"
        );
        WorkUnits(secs)
    }

    /// The demand in reference seconds.
    pub fn as_ref_seconds(self) -> f64 {
        self.0
    }

    /// Adds two demands.
    pub fn plus(self, other: WorkUnits) -> WorkUnits {
        WorkUnits(self.0 + other.0)
    }

    /// Scales the demand (e.g. by item count or model-size ratio).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scaled(self, factor: f64) -> WorkUnits {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "work scale factor must be finite and non-negative, got {factor}"
        );
        WorkUnits(self.0 * factor)
    }

    /// Execution time on a given compute profile.
    pub fn duration_on(self, profile: ComputeProfile) -> SimDuration {
        SimDuration::from_secs_f64(self.0 / profile.speed_factor)
    }
}

/// Relative execution speed of a compute venue versus the reference
/// 2-vCPU serverless function.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct ComputeProfile {
    /// Speed multiplier (1.0 = reference).
    pub speed_factor: f64,
}

impl ComputeProfile {
    /// The reference platform: a 2-vCPU / 4 GB serverless function (used by
    /// the paper for SwinTransformer / EfficientNet workloads).
    pub const FUNCTION_2CORE: ComputeProfile = ComputeProfile { speed_factor: 1.0 };

    /// A 1-vCPU / 2 GB function (paper's configuration for ResNet-18 and
    /// MobileNet workloads). Non-training kernels are partially
    /// memory-bound, so halving cores does not halve speed.
    pub const FUNCTION_1CORE: ComputeProfile = ComputeProfile { speed_factor: 0.7 };

    /// The ml.m5.4xlarge aggregator (16 vCPU). The kernels parallelize only
    /// moderately, so the big VM is ~1.5x the reference, not 8x.
    pub const VM_16CORE: ComputeProfile = ComputeProfile { speed_factor: 1.5 };

    /// Creates a custom profile.
    ///
    /// # Panics
    ///
    /// Panics unless `speed_factor` is positive and finite.
    pub fn new(speed_factor: f64) -> Self {
        assert!(
            speed_factor.is_finite() && speed_factor > 0.0,
            "speed factor must be positive, got {speed_factor}"
        );
        ComputeProfile { speed_factor }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_seconds_pass_through() {
        let w = WorkUnits::from_ref_seconds(2.8);
        assert_eq!(
            w.duration_on(ComputeProfile::FUNCTION_2CORE),
            SimDuration::from_secs_f64(2.8)
        );
    }

    #[test]
    fn slower_profile_takes_longer() {
        let w = WorkUnits::from_ref_seconds(1.0);
        let slow = w.duration_on(ComputeProfile::FUNCTION_1CORE);
        let fast = w.duration_on(ComputeProfile::VM_16CORE);
        assert!(slow > fast);
        // SimDuration rounds to whole microseconds.
        assert!((slow.as_secs_f64() - 1.0 / 0.7).abs() < 1e-6);
    }

    #[test]
    fn scaling_and_addition() {
        let w = WorkUnits::from_ref_seconds(2.0)
            .scaled(3.0)
            .plus(WorkUnits::from_ref_seconds(1.0));
        assert!((w.as_ref_seconds() - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_work_panics() {
        let _ = WorkUnits::from_ref_seconds(-1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_panics() {
        let _ = ComputeProfile::new(0.0);
    }
}
