//! Shared storage types: keys, blobs, receipts, errors.

use std::error::Error;
use std::fmt;

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use flstore_sim::bytes::ByteSize;
use flstore_sim::cost::CostBreakdown;
use flstore_sim::time::SimDuration;

/// Key addressing one object in a store or cache.
///
/// Downstream crates format their structured metadata keys (job / client /
/// round / kind) into an `ObjectKey`; stores treat it as opaque.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectKey(String);

impl ObjectKey {
    /// Creates a key from any string-like value.
    pub fn new(key: impl Into<String>) -> Self {
        ObjectKey(key.into())
    }

    /// The key as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ObjectKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ObjectKey {
    fn from(s: &str) -> Self {
        ObjectKey::new(s)
    }
}

impl From<String> for ObjectKey {
    fn from(s: String) -> Self {
        ObjectKey(s)
    }
}

/// A stored object: an optional real payload plus the *logical* size used by
/// every latency and cost model.
///
/// The reproduction stores reduced-fidelity model weights (a few kilobytes)
/// while accounting for the true serialized model size (tens to hundreds of
/// megabytes) — see DESIGN.md §2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Blob {
    logical_size: ByteSize,
    #[serde(skip, default)]
    payload: Bytes,
}

impl Blob {
    /// A blob with a logical size and no physical payload. Used where only
    /// the byte-volume matters (latency/cost modeling).
    pub fn synthetic(logical_size: ByteSize) -> Self {
        Blob {
            logical_size,
            payload: Bytes::new(),
        }
    }

    /// A blob carrying a real (reduced-fidelity) payload while accounting
    /// for `logical_size` bytes.
    pub fn with_payload(payload: Bytes, logical_size: ByteSize) -> Self {
        Blob {
            logical_size,
            payload,
        }
    }

    /// The logical size used for transfer and storage accounting.
    pub fn logical_size(&self) -> ByteSize {
        self.logical_size
    }

    /// The physical payload (possibly empty).
    pub fn payload(&self) -> &Bytes {
        &self.payload
    }

    /// Consumes the blob, returning its payload.
    pub fn into_payload(self) -> Bytes {
        self.payload
    }
}

/// Latency and cost receipt for one storage/cache/function operation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OpReceipt {
    /// Time the operation took on the critical path of the caller.
    pub latency: SimDuration,
    /// Dollars attributed to the operation.
    pub cost: CostBreakdown,
}

impl OpReceipt {
    /// A free, instantaneous receipt.
    pub const FREE: OpReceipt = OpReceipt {
        latency: SimDuration::ZERO,
        cost: CostBreakdown::ZERO,
    };

    /// Combines two receipts that happened sequentially.
    pub fn then(self, next: OpReceipt) -> OpReceipt {
        OpReceipt {
            latency: self.latency + next.latency,
            cost: self.cost + next.cost,
        }
    }
}

/// Errors returned by storage services.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The requested key does not exist.
    NotFound(ObjectKey),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(key) => write!(f, "object not found: {key}"),
        }
    }
}

impl Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use flstore_sim::cost::Cost;

    #[test]
    fn object_key_round_trips() {
        let k = ObjectKey::new("job1/client7/round42/update");
        assert_eq!(k.as_str(), "job1/client7/round42/update");
        assert_eq!(k.to_string(), "job1/client7/round42/update");
        assert_eq!(ObjectKey::from("x"), ObjectKey::new("x"));
    }

    #[test]
    fn blob_sizes() {
        let b = Blob::synthetic(ByteSize::from_mb(161));
        assert_eq!(b.logical_size(), ByteSize::from_mb(161));
        assert!(b.payload().is_empty());

        let with = Blob::with_payload(Bytes::from_static(b"abc"), ByteSize::from_mb(1));
        assert_eq!(with.payload().len(), 3);
        assert_eq!(with.into_payload(), Bytes::from_static(b"abc"));
    }

    #[test]
    fn receipts_compose() {
        let a = OpReceipt {
            latency: SimDuration::from_secs(1),
            cost: CostBreakdown::compute_only(Cost::from_dollars(0.1)),
        };
        let b = OpReceipt {
            latency: SimDuration::from_secs(2),
            cost: CostBreakdown::transfer_only(Cost::from_dollars(0.2)),
        };
        let c = a.then(b);
        assert_eq!(c.latency, SimDuration::from_secs(3));
        assert!((c.cost.total().as_dollars() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn store_error_displays() {
        let e = StoreError::NotFound(ObjectKey::new("missing"));
        assert_eq!(e.to_string(), "object not found: missing");
    }
}
