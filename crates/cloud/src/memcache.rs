//! ElastiCache-class in-memory cache simulator.
//!
//! The data plane of the Cache-Agg baseline: much faster than the object
//! store, but backed by dedicated nodes that bill per hour whether requests
//! arrive or not. That always-on cost is what FLStore's serverless cache
//! eliminates (paper §5.3.2: 98.83% average cost reduction vs. Cache-Agg).

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use flstore_sim::bytes::ByteSize;
use flstore_sim::cost::{Cost, CostBreakdown};
use flstore_sim::time::SimTime;

use crate::blob::{Blob, ObjectKey, OpReceipt};
use crate::network::NetworkProfile;
use crate::pricing::{CacheNodePricing, TransferPricing};

/// Configuration of a [`MemCache`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemCacheConfig {
    /// Network path between the cache and its clients.
    pub network: NetworkProfile,
    /// Node type (capacity + hourly price).
    pub node: CacheNodePricing,
    /// Number of nodes in the cluster.
    pub nodes: usize,
    /// Transfer pricing for bytes leaving the cache toward the compute plane.
    pub transfer: TransferPricing,
}

impl MemCacheConfig {
    /// A cluster sized (node count rounded up) to hold `working_set`.
    pub fn sized_for(working_set: ByteSize) -> Self {
        let node = CacheNodePricing::R6G_4XLARGE;
        MemCacheConfig {
            network: NetworkProfile::MEM_CACHE,
            node,
            nodes: node.nodes_for(working_set),
            transfer: TransferPricing::INTER_PLANE,
        }
    }
}

impl Default for MemCacheConfig {
    fn default() -> Self {
        MemCacheConfig {
            network: NetworkProfile::MEM_CACHE,
            node: CacheNodePricing::R6G_4XLARGE,
            nodes: 1,
            transfer: TransferPricing::INTER_PLANE,
        }
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemCacheStats {
    /// GETs that found the object.
    pub hits: u64,
    /// GETs that missed.
    pub misses: u64,
    /// SET operations.
    pub sets: u64,
    /// Objects evicted to make room.
    pub evictions: u64,
}

impl MemCacheStats {
    /// Hit fraction in `[0, 1]`; 0 when no GETs have been issued.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    blob: Blob,
    seq: u64,
}

/// A capacity-bound LRU in-memory cache billed per node-hour.
///
/// # Examples
///
/// ```
/// use flstore_cloud::memcache::{MemCache, MemCacheConfig};
/// use flstore_cloud::blob::{Blob, ObjectKey};
/// use flstore_sim::bytes::ByteSize;
/// use flstore_sim::time::SimTime;
///
/// let mut cache = MemCache::new(MemCacheConfig::default(), SimTime::ZERO);
/// let key = ObjectKey::new("agg/round9");
/// cache.set(SimTime::ZERO, key.clone(), Blob::synthetic(ByteSize::from_mb(80)));
/// assert!(cache.get(SimTime::ZERO, &key).is_some());
/// assert!(cache.get(SimTime::ZERO, &ObjectKey::new("other")).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct MemCache {
    cfg: MemCacheConfig,
    entries: HashMap<ObjectKey, Entry>,
    lru: BTreeMap<u64, ObjectKey>,
    next_seq: u64,
    used: ByteSize,
    deployed_at: SimTime,
    stats: MemCacheStats,
}

impl MemCache {
    /// Creates a cache cluster deployed at `now`.
    pub fn new(cfg: MemCacheConfig, now: SimTime) -> Self {
        assert!(cfg.nodes > 0, "a cache cluster needs at least one node");
        MemCache {
            cfg,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            next_seq: 0,
            used: ByteSize::ZERO,
            deployed_at: now,
            stats: MemCacheStats::default(),
        }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &MemCacheConfig {
        &self.cfg
    }

    /// Aggregate capacity across nodes.
    pub fn capacity(&self) -> ByteSize {
        self.cfg.node.capacity * self.cfg.nodes as u64
    }

    /// Logical bytes currently cached.
    pub fn used(&self) -> ByteSize {
        self.used
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> MemCacheStats {
        self.stats
    }

    /// Whether `key` is currently cached (does not touch LRU order).
    pub fn contains(&self, key: &ObjectKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Inserts an object, evicting least-recently-used entries if needed.
    ///
    /// An object larger than the whole cluster is rejected (receipt still
    /// charges the attempted transfer, as the bytes did travel).
    pub fn set(&mut self, _now: SimTime, key: ObjectKey, blob: Blob) -> OpReceipt {
        let size = blob.logical_size();
        let latency = self.cfg.network.transfer_time(size);
        self.stats.sets += 1;
        let receipt = OpReceipt {
            latency,
            cost: CostBreakdown::ZERO, // ingress free; node-hours billed separately
        };
        if size > self.capacity() {
            return receipt;
        }
        self.remove_entry(&key);
        while self.used + size > self.capacity() {
            if !self.evict_lru() {
                break;
            }
        }
        let seq = self.bump_seq();
        self.lru.insert(seq, key.clone());
        self.entries.insert(key, Entry { blob, seq });
        self.used += size;
        receipt
    }

    /// Fetches an object, refreshing its recency. `None` on miss.
    pub fn get(&mut self, _now: SimTime, key: &ObjectKey) -> Option<(Blob, OpReceipt)> {
        // Take the entry out momentarily to update recency without double
        // borrowing the map.
        let Some(mut entry) = self.entries.remove(key) else {
            self.stats.misses += 1;
            return None;
        };
        self.lru.remove(&entry.seq);
        entry.seq = self.bump_seq();
        self.lru.insert(entry.seq, key.clone());
        let blob = entry.blob.clone();
        self.entries.insert(key.clone(), entry);

        self.stats.hits += 1;
        let size = blob.logical_size();
        let receipt = OpReceipt {
            latency: self.cfg.network.transfer_time(size),
            cost: CostBreakdown {
                transfer: self.cfg.transfer.transfer(size),
                ..CostBreakdown::ZERO
            },
        };
        Some((blob, receipt))
    }

    /// Removes an object if present. Returns whether it existed.
    pub fn remove(&mut self, key: &ObjectKey) -> bool {
        self.remove_entry(key)
    }

    /// Always-on node-hour cost from deployment until `now`.
    pub fn infra_cost(&self, now: SimTime) -> Cost {
        self.cfg
            .node
            .node_hours(self.cfg.nodes, now.duration_since(self.deployed_at))
    }

    fn bump_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    fn remove_entry(&mut self, key: &ObjectKey) -> bool {
        if let Some(entry) = self.entries.remove(key) {
            self.lru.remove(&entry.seq);
            self.used -= entry.blob.logical_size();
            true
        } else {
            false
        }
    }

    fn evict_lru(&mut self) -> bool {
        let Some((&seq, _)) = self.lru.iter().next() else {
            return false;
        };
        let key = self.lru.remove(&seq).expect("seq just observed");
        let entry = self.entries.remove(&key).expect("lru and entries in sync");
        self.used -= entry.blob.logical_size();
        self.stats.evictions += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flstore_sim::time::SimDuration;

    fn small_cache(capacity_mb: u64) -> MemCache {
        let cfg = MemCacheConfig {
            node: CacheNodePricing {
                capacity: ByteSize::from_mb(capacity_mb),
                per_node_hour: 1.0,
            },
            nodes: 1,
            ..MemCacheConfig::default()
        };
        MemCache::new(cfg, SimTime::ZERO)
    }

    #[test]
    fn hit_and_miss_counters() {
        let mut c = small_cache(100);
        let k = ObjectKey::new("a");
        c.set(
            SimTime::ZERO,
            k.clone(),
            Blob::synthetic(ByteSize::from_mb(10)),
        );
        assert!(c.get(SimTime::ZERO, &k).is_some());
        assert!(c.get(SimTime::ZERO, &ObjectKey::new("b")).is_none());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small_cache(30);
        for name in ["a", "b", "c"] {
            c.set(
                SimTime::ZERO,
                ObjectKey::new(name),
                Blob::synthetic(ByteSize::from_mb(10)),
            );
        }
        // Touch "a" so "b" becomes the LRU victim.
        assert!(c.get(SimTime::ZERO, &ObjectKey::new("a")).is_some());
        c.set(
            SimTime::ZERO,
            ObjectKey::new("d"),
            Blob::synthetic(ByteSize::from_mb(10)),
        );
        assert!(c.contains(&ObjectKey::new("a")));
        assert!(!c.contains(&ObjectKey::new("b")));
        assert!(c.contains(&ObjectKey::new("c")));
        assert!(c.contains(&ObjectKey::new("d")));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn oversized_object_rejected() {
        let mut c = small_cache(10);
        c.set(
            SimTime::ZERO,
            ObjectKey::new("big"),
            Blob::synthetic(ByteSize::from_mb(50)),
        );
        assert!(!c.contains(&ObjectKey::new("big")));
        assert_eq!(c.used(), ByteSize::ZERO);
    }

    #[test]
    fn replacing_key_updates_usage() {
        let mut c = small_cache(100);
        let k = ObjectKey::new("a");
        c.set(
            SimTime::ZERO,
            k.clone(),
            Blob::synthetic(ByteSize::from_mb(10)),
        );
        c.set(
            SimTime::ZERO,
            k.clone(),
            Blob::synthetic(ByteSize::from_mb(20)),
        );
        assert_eq!(c.used(), ByteSize::from_mb(20));
        assert_eq!(c.len(), 1);
        assert!(c.remove(&k));
        assert!(c.is_empty());
    }

    #[test]
    fn infra_cost_accrues_hourly() {
        let cfg = MemCacheConfig {
            nodes: 3,
            ..MemCacheConfig::default()
        };
        let c = MemCache::new(cfg, SimTime::ZERO);
        let after_50h = SimTime::ZERO + SimDuration::from_hours(50);
        let cost = c.infra_cost(after_50h);
        assert!((cost.as_dollars() - 3.0 * 1.56 * 50.0).abs() < 1e-9);
    }

    #[test]
    fn sized_for_covers_working_set() {
        let cfg = MemCacheConfig::sized_for(ByteSize::from_gb(827));
        assert_eq!(cfg.nodes, 8);
        let c = MemCache::new(cfg, SimTime::ZERO);
        assert!(c.capacity() >= ByteSize::from_gb(827));
    }

    #[test]
    fn get_is_faster_than_object_store_scale() {
        let mut c = small_cache(1000);
        let k = ObjectKey::new("m");
        c.set(
            SimTime::ZERO,
            k.clone(),
            Blob::synthetic(ByteSize::from_mb(80)),
        );
        let (_, receipt) = c.get(SimTime::ZERO, &k).expect("hit");
        // 80 MB at 40 MB/s ≈ 2 s — faster than the 8 s object-store path.
        assert!(receipt.latency.as_secs_f64() < 3.0);
        assert!(receipt.latency.as_secs_f64() > 1.5);
    }
}
