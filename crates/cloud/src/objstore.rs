//! S3-class object store simulator.
//!
//! The persistent data plane of both the baselines and FLStore. Objects are
//! durable, storage is cheap, but every access crosses the network with
//! per-request fees and (plane-crossing) transfer charges — the combination
//! that makes the ObjStore-Agg baseline communication-bound.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use flstore_sim::bytes::ByteSize;
use flstore_sim::cost::{Cost, CostBreakdown};
use flstore_sim::time::SimTime;

use crate::blob::{Blob, ObjectKey, OpReceipt, StoreError};
use crate::network::NetworkProfile;
use crate::pricing::{ObjectStorePricing, TransferPricing};

/// Configuration of an [`ObjectStore`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectStoreConfig {
    /// Network path between the store and its clients.
    pub network: NetworkProfile,
    /// Request and at-rest pricing.
    pub pricing: ObjectStorePricing,
    /// Transfer pricing for bytes leaving the store (egress). Ingress is
    /// free, matching AWS.
    pub transfer: TransferPricing,
    /// Concurrent connections used for batched GETs.
    pub parallelism: usize,
}

impl Default for ObjectStoreConfig {
    fn default() -> Self {
        ObjectStoreConfig {
            network: NetworkProfile::OBJECT_STORE,
            pricing: ObjectStorePricing::AWS_S3,
            transfer: TransferPricing::INTER_PLANE,
            parallelism: 10,
        }
    }
}

/// Operation counters, exposed for tests and experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectStoreStats {
    /// Completed GET operations.
    pub gets: u64,
    /// Completed PUT operations (sync + async).
    pub puts: u64,
    /// Completed DELETE operations.
    pub deletes: u64,
    /// Logical bytes served out.
    pub bytes_out: u64,
    /// Logical bytes written in.
    pub bytes_in: u64,
}

#[derive(Debug, Clone)]
struct StoredObject {
    blob: Blob,
    #[allow(dead_code)] // retained for provenance-style queries in examples
    created: SimTime,
}

/// An S3 / MinIO-class blob store on the virtual clock.
///
/// # Examples
///
/// ```
/// use flstore_cloud::objstore::ObjectStore;
/// use flstore_cloud::blob::{Blob, ObjectKey};
/// use flstore_sim::bytes::ByteSize;
/// use flstore_sim::time::SimTime;
///
/// let mut store = ObjectStore::default();
/// let key = ObjectKey::new("round1/client3");
/// let now = SimTime::ZERO;
/// store.put(now, key.clone(), Blob::synthetic(ByteSize::from_mb(80)));
/// let (blob, receipt) = store.get(now, &key)?;
/// assert_eq!(blob.logical_size(), ByteSize::from_mb(80));
/// assert!(receipt.latency.as_secs_f64() > 1.0); // slow path
/// # Ok::<(), flstore_cloud::blob::StoreError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct ObjectStore {
    cfg: ObjectStoreConfig,
    objects: HashMap<ObjectKey, StoredObject>,
    bytes_stored: ByteSize,
    gb_hours: f64,
    last_accrual: SimTime,
    stats: ObjectStoreStats,
}

impl ObjectStore {
    /// Creates a store with the given configuration.
    pub fn new(cfg: ObjectStoreConfig) -> Self {
        ObjectStore {
            cfg,
            ..ObjectStore::default()
        }
    }

    /// The store configuration.
    pub fn config(&self) -> &ObjectStoreConfig {
        &self.cfg
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Logical bytes currently at rest.
    pub fn bytes_stored(&self) -> ByteSize {
        self.bytes_stored
    }

    /// Whether `key` exists.
    pub fn contains(&self, key: &ObjectKey) -> bool {
        self.objects.contains_key(key)
    }

    /// Operation counters.
    pub fn stats(&self) -> ObjectStoreStats {
        self.stats
    }

    /// Synchronous PUT: the caller waits for the upload.
    ///
    /// Returns the receipt; an existing object under the same key is
    /// replaced (its bytes stop accruing storage).
    pub fn put(&mut self, now: SimTime, key: ObjectKey, blob: Blob) -> OpReceipt {
        let latency = self.cfg.network.transfer_time(blob.logical_size());
        let cost = self.put_cost_and_insert(now, key, blob);
        OpReceipt { latency, cost }
    }

    /// Asynchronous PUT: used for FLStore's write-behind backups. The data
    /// still costs money, but the caller's critical path is not extended.
    pub fn put_async(&mut self, now: SimTime, key: ObjectKey, blob: Blob) -> CostBreakdown {
        self.put_cost_and_insert(now, key, blob)
    }

    fn put_cost_and_insert(&mut self, now: SimTime, key: ObjectKey, blob: Blob) -> CostBreakdown {
        self.accrue(now);
        let size = blob.logical_size();
        if let Some(old) = self
            .objects
            .insert(key, StoredObject { blob, created: now })
        {
            self.bytes_stored -= old.blob.logical_size();
        }
        self.bytes_stored += size;
        self.stats.puts += 1;
        self.stats.bytes_in += size.as_bytes();
        CostBreakdown {
            requests: Cost::from_dollars(self.cfg.pricing.per_put),
            ..CostBreakdown::ZERO
        }
    }

    /// GET one object.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotFound`] if the key does not exist.
    pub fn get(&mut self, _now: SimTime, key: &ObjectKey) -> Result<(Blob, OpReceipt), StoreError> {
        let obj = self
            .objects
            .get(key)
            .ok_or_else(|| StoreError::NotFound(key.clone()))?;
        let blob = obj.blob.clone();
        let size = blob.logical_size();
        self.stats.gets += 1;
        self.stats.bytes_out += size.as_bytes();
        let receipt = OpReceipt {
            latency: self.cfg.network.transfer_time(size),
            cost: CostBreakdown {
                requests: Cost::from_dollars(self.cfg.pricing.per_get),
                transfer: self.cfg.transfer.transfer(size),
                ..CostBreakdown::ZERO
            },
        };
        Ok((blob, receipt))
    }

    /// Batched GET of several objects over parallel connections.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotFound`] for the first missing key; no partial
    /// receipt is produced in that case.
    pub fn get_many(
        &mut self,
        _now: SimTime,
        keys: &[ObjectKey],
    ) -> Result<(Vec<Blob>, OpReceipt), StoreError> {
        let mut blobs = Vec::with_capacity(keys.len());
        let mut total = ByteSize::ZERO;
        for key in keys {
            let obj = self
                .objects
                .get(key)
                .ok_or_else(|| StoreError::NotFound(key.clone()))?;
            total += obj.blob.logical_size();
            blobs.push(obj.blob.clone());
        }
        self.stats.gets += keys.len() as u64;
        self.stats.bytes_out += total.as_bytes();
        let latency = self
            .cfg
            .network
            .batch_transfer_time(keys.len(), total, self.cfg.parallelism);
        let receipt = OpReceipt {
            latency,
            cost: CostBreakdown {
                requests: Cost::from_dollars(self.cfg.pricing.per_get * keys.len() as f64),
                transfer: self.cfg.transfer.transfer(total),
                ..CostBreakdown::ZERO
            },
        };
        Ok((blobs, receipt))
    }

    /// Deletes an object if present. Returns whether it existed.
    pub fn delete(&mut self, now: SimTime, key: &ObjectKey) -> bool {
        self.accrue(now);
        if let Some(old) = self.objects.remove(key) {
            self.bytes_stored -= old.blob.logical_size();
            self.stats.deletes += 1;
            true
        } else {
            false
        }
    }

    /// Advances the storage-cost integrator to `now` and returns the
    /// cumulative at-rest cost since the store was created.
    pub fn storage_cost(&mut self, now: SimTime) -> Cost {
        self.accrue(now);
        // gb_hours -> GB-months at 730 h/month.
        Cost::from_dollars(self.gb_hours / 730.0 * self.cfg.pricing.storage_per_gb_month)
    }

    fn accrue(&mut self, now: SimTime) {
        if now > self.last_accrual {
            let dt = now.duration_since(self.last_accrual);
            self.gb_hours += self.bytes_stored.as_gb_f64() * dt.as_hours_f64();
            self.last_accrual = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flstore_sim::time::SimDuration;

    fn mb(v: u64) -> ByteSize {
        ByteSize::from_mb(v)
    }

    #[test]
    fn put_get_round_trip() {
        let mut s = ObjectStore::default();
        let key = ObjectKey::new("a");
        let put = s.put(SimTime::ZERO, key.clone(), Blob::synthetic(mb(100)));
        assert!(put.latency.as_secs_f64() > 9.0); // 100 MB at 10 MB/s
        let (blob, get) = s.get(SimTime::ZERO, &key).expect("present");
        assert_eq!(blob.logical_size(), mb(100));
        assert!(get.cost.transfer.as_dollars() > 0.0);
        assert!(get.cost.requests.as_dollars() > 0.0);
        assert_eq!(s.stats().gets, 1);
        assert_eq!(s.stats().puts, 1);
    }

    #[test]
    fn missing_key_errors() {
        let mut s = ObjectStore::default();
        let err = s.get(SimTime::ZERO, &ObjectKey::new("nope")).unwrap_err();
        assert_eq!(err, StoreError::NotFound(ObjectKey::new("nope")));
    }

    #[test]
    fn get_many_batches() {
        let mut s = ObjectStore::default();
        let keys: Vec<ObjectKey> = (0..10).map(|i| ObjectKey::new(format!("k{i}"))).collect();
        for k in &keys {
            s.put_async(SimTime::ZERO, k.clone(), Blob::synthetic(mb(80)));
        }
        let (blobs, receipt) = s.get_many(SimTime::ZERO, &keys).expect("all present");
        assert_eq!(blobs.len(), 10);
        // 800 MB at 10 MB/s ≈ 80 s, much less than 10 serial GETs.
        assert!(receipt.latency.as_secs_f64() > 79.0);
        assert!(receipt.latency.as_secs_f64() < 85.0);
    }

    #[test]
    fn get_many_fails_on_any_missing() {
        let mut s = ObjectStore::default();
        s.put_async(SimTime::ZERO, ObjectKey::new("k0"), Blob::synthetic(mb(1)));
        let keys = [ObjectKey::new("k0"), ObjectKey::new("k1")];
        assert!(s.get_many(SimTime::ZERO, &keys).is_err());
    }

    #[test]
    fn replacement_updates_bytes() {
        let mut s = ObjectStore::default();
        let key = ObjectKey::new("a");
        s.put_async(SimTime::ZERO, key.clone(), Blob::synthetic(mb(100)));
        s.put_async(SimTime::ZERO, key.clone(), Blob::synthetic(mb(40)));
        assert_eq!(s.bytes_stored(), mb(40));
        assert!(s.delete(SimTime::ZERO, &key));
        assert_eq!(s.bytes_stored(), ByteSize::ZERO);
        assert!(!s.delete(SimTime::ZERO, &key));
    }

    #[test]
    fn storage_cost_accrues_over_time() {
        let mut s = ObjectStore::default();
        s.put_async(
            SimTime::ZERO,
            ObjectKey::new("a"),
            Blob::synthetic(ByteSize::from_gb(100)),
        );
        let month = SimTime::ZERO + SimDuration::from_hours(730);
        let cost = s.storage_cost(month);
        assert!((cost.as_dollars() - 2.3).abs() < 0.01, "got {cost}");
        // Accrual is monotone and idempotent at the same instant.
        let again = s.storage_cost(month);
        assert_eq!(cost, again);
    }

    #[test]
    fn async_put_has_cost_but_no_latency_api() {
        let mut s = ObjectStore::default();
        let cost = s.put_async(SimTime::ZERO, ObjectKey::new("bk"), Blob::synthetic(mb(80)));
        assert!(cost.requests.as_dollars() > 0.0);
        assert!(s.contains(&ObjectKey::new("bk")));
    }
}
