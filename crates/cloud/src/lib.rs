//! # flstore-cloud — cloud service simulators
//!
//! The data- and compute-plane services the FLStore paper evaluates against,
//! rebuilt as deterministic simulators on the `flstore-sim` virtual clock:
//!
//! * [`objstore`] — S3/MinIO-class object store: durable, cheap at rest,
//!   slow, per-request fees, plane-crossing transfer charges.
//! * [`memcache`] — ElastiCache-class in-memory LRU cache: fast but billed
//!   per node-hour around the clock.
//! * [`vm`] — SageMaker-class dedicated instances (the baseline aggregator).
//! * [`network`] — path models (RTT, per-request overhead, bandwidth).
//! * [`pricing`] — the AWS-calibrated price sheet every cost figure uses.
//! * [`compute`] — work-demand vs. compute-capability separation.
//! * [`blob`] — keys, blobs (logical size + optional reduced payload),
//!   operation receipts, store errors.
//!
//! Design rule: every operation returns an [`blob::OpReceipt`] — a
//! `(latency, cost-breakdown)` pair — so callers compose end-to-end request
//! latency and dollars without the services knowing who calls them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blob;
pub mod compute;
pub mod memcache;
pub mod network;
pub mod objstore;
pub mod pricing;
pub mod vm;

pub use blob::{Blob, ObjectKey, OpReceipt, StoreError};
pub use memcache::{MemCache, MemCacheConfig};
pub use network::NetworkProfile;
pub use objstore::{ObjectStore, ObjectStoreConfig};
pub use vm::{VmInstance, VmType};
