//! Network latency models.
//!
//! Transfers between the data plane and the compute plane dominate
//! non-training latency in the baselines (§2.3 of the paper measures ~89 s of
//! communication against ~2.8 s of computation). [`NetworkProfile`] captures
//! the three parameters that matter at this granularity: round-trip setup
//! time, per-request overhead, and sustained bandwidth.

use serde::{Deserialize, Serialize};

use flstore_sim::bytes::ByteSize;
use flstore_sim::time::SimDuration;

/// A point-to-point network path model.
///
/// Latency of moving `b` bytes in one request:
/// `rtt + per_request + b / bandwidth`.
///
/// Batched requests ([`NetworkProfile::batch_transfer_time`]) pay the RTT
/// once, per-request overhead for each operation (pipelined over
/// `parallelism` connections), and share the path bandwidth.
///
/// # Examples
///
/// ```
/// use flstore_cloud::network::NetworkProfile;
/// use flstore_sim::bytes::ByteSize;
///
/// let s3 = NetworkProfile::OBJECT_STORE;
/// let one_update = s3.transfer_time(ByteSize::from_mb_f64(82.7));
/// assert!(one_update.as_secs_f64() > 8.0); // ~10 MB/s effective
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkProfile {
    /// Connection/authentication setup paid once per exchange.
    pub rtt: SimDuration,
    /// Fixed overhead per individual request (metadata lookup, HTTP framing).
    pub per_request: SimDuration,
    /// Sustained path bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
}

impl NetworkProfile {
    /// Object-store path (S3-class): 30 ms RTT, 20 ms/request, ~10 MB/s
    /// effective single-tenant throughput.
    ///
    /// Calibrated so that fetching one 10-client round of
    /// EfficientNetV2-S-sized updates (~827 MB) takes ≈ 85–90 s, matching the
    /// paper's measured average communication latency of 89 s (§2.3).
    pub const OBJECT_STORE: NetworkProfile = NetworkProfile {
        rtt: SimDuration::from_millis(30),
        per_request: SimDuration::from_millis(20),
        bandwidth_bytes_per_sec: 10_000_000,
    };

    /// In-memory cache path (ElastiCache-class): 1 ms RTT, 0.5 ms/request,
    /// ~40 MB/s effective throughput to the aggregator.
    pub const MEM_CACHE: NetworkProfile = NetworkProfile {
        rtt: SimDuration::from_millis(1),
        per_request: SimDuration::from_micros(500),
        bandwidth_bytes_per_sec: 40_000_000,
    };

    /// Function-to-function / intra-VPC path used for FLStore routing and
    /// replica synchronization: 1 ms RTT, ~100 MB/s.
    pub const INTRA_CLOUD: NetworkProfile = NetworkProfile {
        rtt: SimDuration::from_millis(1),
        per_request: SimDuration::from_micros(200),
        bandwidth_bytes_per_sec: 100_000_000,
    };

    /// Client-to-cloud path for issuing requests and returning (small)
    /// results: 40 ms RTT, ~5 MB/s uplink.
    pub const CLIENT_WAN: NetworkProfile = NetworkProfile {
        rtt: SimDuration::from_millis(40),
        per_request: SimDuration::from_millis(5),
        bandwidth_bytes_per_sec: 5_000_000,
    };

    /// Time to move `bytes` in a single request.
    pub fn transfer_time(&self, bytes: ByteSize) -> SimDuration {
        self.rtt + self.per_request + self.payload_time(bytes)
    }

    /// Time to move `total_bytes` split across `requests` operations using up
    /// to `parallelism` concurrent connections that share the path bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism` is zero.
    pub fn batch_transfer_time(
        &self,
        requests: usize,
        total_bytes: ByteSize,
        parallelism: usize,
    ) -> SimDuration {
        assert!(parallelism > 0, "parallelism must be at least 1");
        if requests == 0 {
            return SimDuration::ZERO;
        }
        let waves = requests.div_ceil(parallelism) as u64;
        self.rtt + self.per_request * waves + self.payload_time(total_bytes)
    }

    /// Pure payload streaming time at path bandwidth.
    pub fn payload_time(&self, bytes: ByteSize) -> SimDuration {
        if bytes.is_zero() {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes.as_bytes() as f64 / self.bandwidth_bytes_per_sec as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_store_round_fetch_matches_paper_scale() {
        // 10 clients x EfficientNetV2-S (82.7 MB) fetched in one batch.
        let round = ByteSize::from_mb_f64(82.7) * 10;
        let t = NetworkProfile::OBJECT_STORE.batch_transfer_time(10, round, 10);
        let secs = t.as_secs_f64();
        assert!(
            (80.0..100.0).contains(&secs),
            "expected ~89 s communication, got {secs}"
        );
    }

    #[test]
    fn cache_is_faster_than_object_store() {
        let payload = ByteSize::from_mb(100);
        let s3 = NetworkProfile::OBJECT_STORE.transfer_time(payload);
        let redis = NetworkProfile::MEM_CACHE.transfer_time(payload);
        assert!(redis < s3);
        assert!(redis.as_secs_f64() > 2.0); // still non-trivial
    }

    #[test]
    fn zero_bytes_still_pays_rtt() {
        let t = NetworkProfile::OBJECT_STORE.transfer_time(ByteSize::ZERO);
        assert_eq!(t, SimDuration::from_millis(50));
    }

    #[test]
    fn batch_amortizes_per_request_overhead() {
        let bytes = ByteSize::from_mb(10);
        let serial: SimDuration = (0..10)
            .map(|_| NetworkProfile::OBJECT_STORE.transfer_time(bytes))
            .sum();
        let batched = NetworkProfile::OBJECT_STORE.batch_transfer_time(10, bytes * 10, 10);
        assert!(batched < serial);
    }

    #[test]
    fn empty_batch_is_free() {
        let t = NetworkProfile::MEM_CACHE.batch_transfer_time(0, ByteSize::ZERO, 4);
        assert_eq!(t, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "parallelism")]
    fn zero_parallelism_panics() {
        let _ = NetworkProfile::MEM_CACHE.batch_transfer_time(1, ByteSize::from_mb(1), 0);
    }
}
