//! Cloud price sheet.
//!
//! All dollar figures in the reproduction come from this module. Rates are
//! calibrated to AWS us-east-1 public pricing circa 2024, the setting of the
//! paper's evaluation (SageMaker aggregator, S3 object store, ElastiCache
//! in-memory cache, Lambda-class serverless functions). Absolute cloud prices
//! drift; what the experiments depend on is the *structure*:
//!
//! * object storage is cheap at rest but slow, with per-request fees;
//! * in-memory caches are fast but billed per node-hour whether used or not;
//! * dedicated aggregator instances bill per hour whether used or not;
//! * serverless functions bill per GB-second actually consumed, plus a
//!   per-invocation fee, with warm memory effectively free between
//!   invocations (the InfiniCache observation FLStore builds on);
//! * moving bytes between the data plane and the compute plane costs money.

use serde::{Deserialize, Serialize};

use flstore_sim::bytes::ByteSize;
use flstore_sim::cost::Cost;
use flstore_sim::time::SimDuration;

/// Seconds per billing month used by cloud providers (730 h).
pub const SECONDS_PER_MONTH: f64 = 730.0 * 3600.0;

/// Serverless function pricing (AWS Lambda-class).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FunctionPricing {
    /// Dollars per GB-second of configured memory while executing.
    pub per_gb_second: f64,
    /// Dollars per invocation.
    pub per_request: f64,
}

impl FunctionPricing {
    /// AWS Lambda x86 pricing: $0.0000166667 per GB-s, $0.20 per 1M requests.
    pub const AWS_LAMBDA: FunctionPricing = FunctionPricing {
        per_gb_second: 0.000_016_666_7,
        per_request: 0.000_000_2,
    };

    /// Billing for one invocation of `duration` on a function configured
    /// with `memory`.
    pub fn invocation(&self, memory: ByteSize, duration: SimDuration) -> Cost {
        let gb_seconds = memory.as_gb_f64() * duration.as_secs_f64();
        Cost::from_dollars(gb_seconds * self.per_gb_second + self.per_request)
    }
}

/// Object-store pricing (AWS S3 standard-class).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectStorePricing {
    /// Dollars per GB-month at rest.
    pub storage_per_gb_month: f64,
    /// Dollars per GET request.
    pub per_get: f64,
    /// Dollars per PUT request.
    pub per_put: f64,
}

impl ObjectStorePricing {
    /// S3 Standard: $0.023/GB-month, GET $0.0004/1k, PUT $0.005/1k.
    pub const AWS_S3: ObjectStorePricing = ObjectStorePricing {
        storage_per_gb_month: 0.023,
        per_get: 0.000_000_4,
        per_put: 0.000_005,
    };

    /// Cost of storing `bytes` for `duration`.
    pub fn storage(&self, bytes: ByteSize, duration: SimDuration) -> Cost {
        let months = duration.as_secs_f64() / SECONDS_PER_MONTH;
        Cost::from_dollars(bytes.as_gb_f64() * self.storage_per_gb_month * months)
    }
}

/// In-memory cache pricing (AWS ElastiCache-class), billed per node-hour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheNodePricing {
    /// Usable memory per node.
    pub capacity: ByteSize,
    /// Dollars per node-hour.
    pub per_node_hour: f64,
}

impl CacheNodePricing {
    /// cache.r6g.xlarge: ~26 GB usable, $0.411/h.
    pub const R6G_XLARGE: CacheNodePricing = CacheNodePricing {
        capacity: ByteSize::from_gb(26),
        per_node_hour: 0.411,
    };

    /// cache.r6g.4xlarge: ~105 GB usable, $1.56/h.
    pub const R6G_4XLARGE: CacheNodePricing = CacheNodePricing {
        capacity: ByteSize::from_gb(105),
        per_node_hour: 1.56,
    };

    /// Cost of running `nodes` nodes for `duration`.
    pub fn node_hours(&self, nodes: usize, duration: SimDuration) -> Cost {
        Cost::from_dollars(self.per_node_hour * nodes as f64 * duration.as_hours_f64())
    }

    /// Minimum node count whose aggregate capacity covers `working_set`.
    pub fn nodes_for(&self, working_set: ByteSize) -> usize {
        let cap = self.capacity.as_bytes().max(1);
        (working_set.as_bytes().div_ceil(cap)).max(1) as usize
    }
}

/// Dedicated VM pricing (SageMaker / EC2-class), billed per instance-hour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmPricing {
    /// Dollars per instance-hour.
    pub per_hour: f64,
}

impl VmPricing {
    /// SageMaker ml.m5.4xlarge (16 vCPU, 64 GiB): $0.922/h — the paper's
    /// aggregator instance.
    pub const ML_M5_4XLARGE: VmPricing = VmPricing { per_hour: 0.922 };

    /// SageMaker ml.m5.xlarge (4 vCPU, 16 GiB): $0.23/h.
    pub const ML_M5_XLARGE: VmPricing = VmPricing { per_hour: 0.23 };

    /// Cost of `duration` of instance time.
    pub fn duration(&self, duration: SimDuration) -> Cost {
        Cost::from_dollars(self.per_hour * duration.as_hours_f64())
    }
}

/// Data-transfer pricing between the data plane and the compute plane.
///
/// The paper attributes a large share of non-training cost to "high data
/// transfer costs" between the storage service and the aggregator
/// (§2.2, Fig. 8). We price plane-crossing traffic at the inter-service /
/// internet-egress rate; traffic that stays inside one function (FLStore's
/// locality-aware path) is free.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferPricing {
    /// Dollars per GB crossing between services/planes.
    pub per_gb: f64,
}

impl TransferPricing {
    /// Internet/egress-class rate ($0.09/GB) used for plane-crossing bytes.
    pub const INTER_PLANE: TransferPricing = TransferPricing { per_gb: 0.09 };

    /// Same-place transfer (FLStore's unified planes): free.
    pub const CO_LOCATED: TransferPricing = TransferPricing { per_gb: 0.0 };

    /// Cost of moving `bytes`.
    pub fn transfer(&self, bytes: ByteSize) -> Cost {
        Cost::from_dollars(bytes.as_gb_f64() * self.per_gb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_invocation_cost_matches_hand_math() {
        // 4 GB for 3 s = 12 GB-s -> 12 * 0.0000166667 + 0.0000002
        let c =
            FunctionPricing::AWS_LAMBDA.invocation(ByteSize::from_gb(4), SimDuration::from_secs(3));
        assert!((c.as_dollars() - 0.000_200_2).abs() < 1e-6, "{c}");
    }

    #[test]
    fn s3_storage_for_a_month() {
        let c = ObjectStorePricing::AWS_S3
            .storage(ByteSize::from_gb(100), SimDuration::from_hours(730));
        assert!((c.as_dollars() - 2.3).abs() < 1e-9, "{c}");
    }

    #[test]
    fn cache_node_sizing() {
        let p = CacheNodePricing::R6G_4XLARGE;
        assert_eq!(p.nodes_for(ByteSize::from_gb(1)), 1);
        assert_eq!(p.nodes_for(ByteSize::from_gb(105)), 1);
        assert_eq!(p.nodes_for(ByteSize::from_gb(106)), 2);
        assert_eq!(p.nodes_for(ByteSize::from_gb(827)), 8);
        assert_eq!(p.nodes_for(ByteSize::ZERO), 1);
    }

    #[test]
    fn cache_node_hours() {
        let c = CacheNodePricing::R6G_4XLARGE.node_hours(8, SimDuration::from_hours(50));
        assert!((c.as_dollars() - 8.0 * 1.56 * 50.0).abs() < 1e-9);
    }

    #[test]
    fn vm_hourly() {
        let c = VmPricing::ML_M5_4XLARGE.duration(SimDuration::from_secs(100));
        assert!((c.as_dollars() - 0.922 * 100.0 / 3600.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_rates() {
        let gb = ByteSize::from_gb(1);
        assert!((TransferPricing::INTER_PLANE.transfer(gb).as_dollars() - 0.09).abs() < 1e-12);
        assert!(TransferPricing::CO_LOCATED.transfer(gb).is_zero());
    }
}
