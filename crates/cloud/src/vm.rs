//! Dedicated VM instances (the baselines' compute plane).
//!
//! Conventional FL frameworks keep an always-on aggregator (the paper
//! deploys SageMaker ml.m5.4xlarge). The instance bills per hour whether
//! serving requests or idle — the structural cost FLStore avoids.

use serde::Serialize;

use flstore_sim::bytes::ByteSize;
use flstore_sim::cost::Cost;
use flstore_sim::queue::{Assignment, ServerPool};
use flstore_sim::time::{SimDuration, SimTime};

use crate::compute::{ComputeProfile, WorkUnits};
use crate::pricing::VmPricing;

/// A VM instance type.
///
/// Only serializable: the `&'static str` name cannot be deserialized from
/// owned JSON text, and the catalog of types is baked into the binary anyway.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct VmType {
    /// Marketing name.
    pub name: &'static str,
    /// Virtual CPU count.
    pub vcpus: u32,
    /// Instance memory.
    pub memory: ByteSize,
    /// Hourly price.
    pub per_hour: f64,
    /// Execution speed relative to the reference function.
    pub speed_factor: f64,
}

impl VmType {
    /// SageMaker ml.m5.4xlarge — the paper's aggregator instance.
    pub const ML_M5_4XLARGE: VmType = VmType {
        name: "ml.m5.4xlarge",
        vcpus: 16,
        memory: ByteSize::from_gb(64),
        per_hour: 0.922,
        speed_factor: 1.5,
    };

    /// SageMaker ml.m5.xlarge — a smaller aggregator option.
    pub const ML_M5_XLARGE: VmType = VmType {
        name: "ml.m5.xlarge",
        vcpus: 4,
        memory: ByteSize::from_gb(16),
        per_hour: 0.23,
        speed_factor: 1.1,
    };

    /// Pricing view of this type.
    pub fn pricing(&self) -> VmPricing {
        VmPricing {
            per_hour: self.per_hour,
        }
    }

    /// Compute capability view of this type.
    pub fn compute_profile(&self) -> ComputeProfile {
        ComputeProfile::new(self.speed_factor)
    }
}

/// A running, always-on VM that executes work requests.
///
/// Tracks busy time (for per-request cost attribution) and uptime (for
/// total-window infrastructure cost). Work items queue FIFO on a small pool
/// of worker slots.
///
/// # Examples
///
/// ```
/// use flstore_cloud::vm::{VmInstance, VmType};
/// use flstore_cloud::compute::WorkUnits;
/// use flstore_sim::time::SimTime;
///
/// let mut agg = VmInstance::launch(VmType::ML_M5_4XLARGE, SimTime::ZERO, 1);
/// let done = agg.execute(SimTime::ZERO, WorkUnits::from_ref_seconds(3.0));
/// assert!(done.end > done.start || done.start == done.end);
/// ```
#[derive(Debug, Clone)]
pub struct VmInstance {
    vm_type: VmType,
    workers: ServerPool,
    launched_at: SimTime,
    busy: SimDuration,
}

impl VmInstance {
    /// Launches an instance at `now` with `worker_slots` concurrent request
    /// slots (the paper's aggregator handles requests essentially serially;
    /// pass 1 unless modeling a multi-threaded server).
    ///
    /// # Panics
    ///
    /// Panics if `worker_slots` is zero.
    pub fn launch(vm_type: VmType, now: SimTime, worker_slots: usize) -> Self {
        VmInstance {
            vm_type,
            workers: ServerPool::new(worker_slots),
            launched_at: now,
            busy: SimDuration::ZERO,
        }
    }

    /// The instance type.
    pub fn vm_type(&self) -> &VmType {
        &self.vm_type
    }

    /// Queues `work` arriving at `now`; returns the queueing assignment.
    pub fn execute(&mut self, now: SimTime, work: WorkUnits) -> Assignment {
        let service = work.duration_on(self.vm_type.compute_profile());
        self.busy += service;
        self.workers.assign(now, service)
    }

    /// Cost of the instance-time consumed while actually executing requests.
    /// Used for per-request cost attribution.
    pub fn busy_cost_of(&self, service: SimDuration) -> Cost {
        self.vm_type.pricing().duration(service)
    }

    /// Cumulative busy time so far.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Total always-on cost from launch to `now` (busy or not).
    pub fn uptime_cost(&self, now: SimTime) -> Cost {
        self.vm_type
            .pricing()
            .duration(now.duration_since(self.launched_at))
    }

    /// Utilization in `[0, 1]` over the window from launch to `now`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let up = now.duration_since(self.launched_at).as_secs_f64();
        if up == 0.0 {
            0.0
        } else {
            (self.busy.as_secs_f64() / up).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execute_scales_by_speed() {
        let mut vm = VmInstance::launch(VmType::ML_M5_4XLARGE, SimTime::ZERO, 1);
        let a = vm.execute(SimTime::ZERO, WorkUnits::from_ref_seconds(3.0));
        // 3 ref-seconds at 1.5x speed = 2 s.
        assert_eq!(a.end.duration_since(a.start), SimDuration::from_secs(2));
    }

    #[test]
    fn serial_requests_queue() {
        let mut vm = VmInstance::launch(VmType::ML_M5_4XLARGE, SimTime::ZERO, 1);
        let w = WorkUnits::from_ref_seconds(1.5); // 1 s on this VM
        let a = vm.execute(SimTime::ZERO, w);
        let b = vm.execute(SimTime::ZERO, w);
        assert!(a.queue_wait.is_zero());
        assert_eq!(b.queue_wait, SimDuration::from_secs(1));
        assert_eq!(vm.busy_time(), SimDuration::from_secs(2));
    }

    #[test]
    fn uptime_cost_independent_of_load() {
        let vm = VmInstance::launch(VmType::ML_M5_4XLARGE, SimTime::ZERO, 1);
        let cost = vm.uptime_cost(SimTime::ZERO + SimDuration::from_hours(50));
        assert!((cost.as_dollars() - 0.922 * 50.0).abs() < 1e-9);
        assert_eq!(
            vm.utilization(SimTime::ZERO + SimDuration::from_hours(50)),
            0.0
        );
    }

    #[test]
    fn busy_cost_of_service_window() {
        let vm = VmInstance::launch(VmType::ML_M5_4XLARGE, SimTime::ZERO, 1);
        let c = vm.busy_cost_of(SimDuration::from_secs(100));
        assert!((c.as_dollars() - 0.922 * 100.0 / 3600.0).abs() < 1e-9);
    }
}
