//! The standalone FLStore load generator.
//!
//! ```sh
//! # Closed loop: one pipelined connection, 32-deep window.
//! flstore-loadgen --addr 127.0.0.1:4600 --mode closed --requests 200 --window 32
//!
//! # Open-loop burst over 8 connections, writing the report to a file:
//! flstore-loadgen --addr 127.0.0.1:4600 --mode burst --connections 8 \
//!     --requests 400 --out results/loadgen.json
//!
//! # Paced open loop: fixed-interval arrivals at 500 requests/s:
//! flstore-loadgen --addr 127.0.0.1:4600 --mode burst --rate 500 --requests 200
//!
//! # Ride through a cluster failover: honor Overloaded/Relocated hints
//! # with a bounded retry budget (closed mode only):
//! flstore-loadgen --addr 127.0.0.1:4600 --mode closed --retries 3 --expect-clean
//! ```
//!
//! The schedule replays the same synthetic trace
//! ([`flstore_trace::driver::materialize_schedule`] over
//! `TraceConfig`) that the in-process experiment driver serves, so a
//! networked run produces the same envelope sequence as a library run.
//! The JSON report separates deterministic payload facts from
//! `_wall`-suffixed wall-clock fields (see the `flstore-loadgen` crate
//! docs); `--expect-overload` / `--expect-clean` turn the report into a
//! pass/fail smoke gate for CI.

#![forbid(unsafe_code)]

use std::io::Write as _;

use flstore_fl::ids::JobId;
use flstore_fl::job::FlJobConfig;
use flstore_loadgen::{probe_connection_limit, run_closed, run_open_paced, LoadReport};
use flstore_trace::driver::{materialize_schedule, TraceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: flstore-loadgen --addr HOST:PORT [--mode closed|burst|probe] \
         [--requests N] [--seed N] [--window N] [--connections N] [--rate N] \
         [--retries N (closed mode)] [--out FILE] [--expect-overload] [--expect-clean]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(args: &mut std::slice::Iter<'_, String>, flag: &str) -> T {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = None;
    let mut mode = String::from("closed");
    let mut requests = 40usize;
    let mut seed = 7u64;
    let mut window = 16usize;
    let mut connections = 4usize;
    let mut rate = 0u64;
    let mut retries = 0usize;
    let mut out: Option<String> = None;
    let mut expect_overload = false;
    let mut expect_clean = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => addr = Some(parse::<String>(&mut iter, "--addr")),
            "--mode" => mode = parse(&mut iter, "--mode"),
            "--requests" => requests = parse(&mut iter, "--requests"),
            "--seed" => seed = parse(&mut iter, "--seed"),
            "--window" => window = parse(&mut iter, "--window"),
            "--connections" => connections = parse(&mut iter, "--connections"),
            "--rate" => rate = parse(&mut iter, "--rate"),
            "--retries" => retries = parse(&mut iter, "--retries"),
            "--out" => out = Some(parse::<String>(&mut iter, "--out")),
            "--expect-overload" => expect_overload = true,
            "--expect-clean" => expect_clean = true,
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };

    // The same job config the `flstore-net serve` default deployment
    // hosts, so requests address records the server actually ingests.
    let job_cfg = FlJobConfig::quick_test(JobId::new(1));
    let mut trace = TraceConfig::smoke(seed);
    trace.requests = requests;
    let schedule = materialize_schedule(&job_cfg, &trace);

    let report: LoadReport = match mode.as_str() {
        "closed" => run_closed(&addr, &schedule, window, retries).unwrap_or_else(|e| {
            eprintln!("connect {addr}: {e}");
            std::process::exit(1);
        }),
        // `--rate 0` (the default) is the unpaced burst; a nonzero rate
        // paces arrivals at fixed intervals from the run start.
        "burst" => run_open_paced(&addr, &schedule, connections, rate),
        "probe" => {
            let (served, overloaded, errors) = probe_connection_limit(&addr, connections);
            println!("probe: {served} served, {overloaded} overloaded, {errors} transport errors");
            if errors > 0 || (expect_overload && overloaded == 0) {
                std::process::exit(1);
            }
            return;
        }
        _ => usage(),
    };

    let json = report.to_json();
    let rendered = serde_json::to_string_pretty(&json).expect("report serializes");
    match &out {
        Some(path) => {
            let mut file = std::fs::File::create(path).unwrap_or_else(|e| {
                eprintln!("create {path}: {e}");
                std::process::exit(1);
            });
            writeln!(file, "{rendered}").expect("write report");
        }
        None => println!("{rendered}"),
    }
    eprintln!(
        "{} sent, {} ok, {} overloaded, {} rejected, {} retried ({} redirected), \
         {} transport errors",
        report.sent,
        report.ok,
        report.overloaded,
        report.rejected,
        report.retried,
        report.redirected,
        report.transport_errors
    );

    // Smoke gates: under overload we demand typed rejections and a clean
    // transport; unloaded we demand every envelope served.
    if report.transport_errors > 0 {
        eprintln!("FAIL: transport errors (resets/truncation) observed");
        std::process::exit(1);
    }
    if expect_overload && report.overloaded == 0 {
        eprintln!("FAIL: expected typed Overloaded rejections, saw none");
        std::process::exit(1);
    }
    // `sent` counts retransmissions too, so the clean gate compares
    // against the schedule: every *scheduled* envelope must end in a
    // non-rejected final response (retries within budget are fine).
    if expect_clean && report.ok != schedule.len() {
        eprintln!(
            "FAIL: expected every scheduled request served, got {}/{}",
            report.ok,
            schedule.len()
        );
        std::process::exit(1);
    }
}
