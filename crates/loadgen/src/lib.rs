//! # flstore-loadgen — socket-level load generation
//!
//! Drives a [`flstore-net`](flstore_net) front door over real TCP
//! connections and reports latency percentiles (p50/p95/p99) and goodput
//! — including under deliberate overload, where the server answers with
//! typed [`Overloaded`](flstore_core::api::ApiError::Overloaded)
//! envelopes instead of dropping frames or resetting connections.
//!
//! Two drivers:
//!
//! * **closed loop** ([`run_closed`]) — one pipelined connection keeps at
//!   most `window` requests in flight; a response must arrive before the
//!   next request past the window is sent. Measures the server's
//!   unloaded/offered-load latency. The closed loop is the retry-capable
//!   driver: with a nonzero retry budget it honors
//!   [`Overloaded.retry_after_hint`](flstore_core::api::ApiError::Overloaded)
//!   and the
//!   [`Relocated`](flstore_core::api::ApiError::Relocated) redirect
//!   envelope a cluster front door answers during a failover — the
//!   envelope is re-sent with its virtual stamp advanced by the full
//!   hint, so a client rides through a node loss with zero failed
//!   requests.
//! * **open loop** ([`run_open_burst`]) — `connections` parallel
//!   connections blast their share of the schedule without waiting for
//!   responses, the arrival process a saturated front door sees. Under
//!   overload the interesting outputs are goodput and the typed
//!   rejection count; the reset count must stay zero.
//! * **paced open loop** ([`run_open_paced`]) — the same open loop, but
//!   request *k* of the schedule is released `k / rate` seconds after
//!   the run starts (a fixed-interval arrival process at `rate`
//!   requests/s), regardless of response progress. The deterministic
//!   report fields (counts, checksum) are identical to the burst
//!   driver's for the same schedule; only the wall-clock fields change.
//!
//! Request schedules come from
//! [`flstore_trace::driver::materialize_schedule`] — the same traces the
//! in-process experiment driver serves — so a networked run replays the
//! same envelope sequence as a library-call run.
//!
//! ## Determinism contract
//!
//! [`LoadReport::to_json`] separates deterministic payload facts (sent /
//! ok counts, the FNV-1a checksum over response payload bytes) from
//! wall-clock measurements, which carry a `_wall` name suffix.
//! `scripts/compare_results.sh` normalizes exactly the `_wall` fields,
//! so CI byte-diffs the rest across runs and thread counts.
//!
//! This crate is the sanctioned home of real wall-clock reads on the
//! serving path (latency must be measured, not simulated); see
//! `analyze-allowlist.txt`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::Instant;

use flstore_core::api::{ApiError, Request, Response};
use flstore_net::client::NetClient;
use flstore_net::codec::encode_response;
use flstore_net::wire::WireError;
use flstore_sim::time::{SimDuration, SimTime};
use serde_json::{json, Value};

/// Latency percentiles over one run, in microseconds of wall time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Median.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Mean.
    pub mean_us: f64,
    /// Worst observed.
    pub max_us: f64,
}

impl LatencyStats {
    /// Computes percentiles from raw samples (empty input returns None).
    pub fn from_samples(mut samples: Vec<f64>) -> Option<LatencyStats> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let pick = |q: f64| {
            let idx = ((samples.len() - 1) as f64 * q).round() as usize;
            samples[idx]
        };
        Some(LatencyStats {
            p50_us: pick(0.50),
            p95_us: pick(0.95),
            p99_us: pick(0.99),
            mean_us: samples.iter().sum::<f64>() / samples.len() as f64,
            max_us: samples[samples.len() - 1],
        })
    }
}

/// What one driver run observed.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests written to the socket(s).
    pub sent: usize,
    /// Non-rejected responses (served / ingested / evicted / stats).
    pub ok: usize,
    /// Typed `Overloaded` rejections (backpressure; retryable).
    pub overloaded: usize,
    /// Other typed rejections (admission errors etc.).
    pub rejected: usize,
    /// Envelopes re-sent after a retryable rejection (`Overloaded` or
    /// `Relocated`), within the driver's retry budget. Deterministic
    /// when the server's rejections are: a cluster's failover redirects
    /// are virtual-clock driven, so this column byte-reproduces across
    /// runs.
    pub retried: usize,
    /// The subset of retries triggered by `Relocated` redirects (a
    /// cluster node failing over). Deterministic, like `retried`.
    pub redirected: usize,
    /// Responses the transport lost: connection resets, truncated
    /// streams, decode failures. The front door's contract is that this
    /// stays zero even under overload.
    pub transport_errors: usize,
    /// FNV-1a checksum over every response frame's tag and payload
    /// bytes, in per-connection submission order (connections XOR-folded
    /// so multi-connection runs stay order-independent across threads).
    pub checksum: u64,
    /// Wall-clock duration of the run, seconds.
    pub elapsed_wall_s: f64,
    /// Non-rejected responses per wall second.
    pub goodput_rps_wall: f64,
    /// Send-to-receive wall latency percentiles.
    pub latency: Option<LatencyStats>,
}

impl LoadReport {
    /// JSON form. Deterministic fields keep plain names; every
    /// wall-clock-dependent field ends in `_wall`, the suffix
    /// `scripts/compare_results.sh` normalizes before byte-diffing.
    pub fn to_json(&self) -> Value {
        let lat = |f: fn(&LatencyStats) -> f64| self.latency.as_ref().map(f).unwrap_or(0.0);
        json!({
            "sent": self.sent,
            "ok": self.ok,
            "overloaded_wall": self.overloaded,
            "rejected": self.rejected,
            "retried": self.retried,
            "redirected": self.redirected,
            "transport_errors": self.transport_errors,
            "checksum": format!("{:016x}", self.checksum),
            "elapsed_s_wall": self.elapsed_wall_s,
            "goodput_rps_wall": self.goodput_rps_wall,
            "p50_us_wall": lat(|l| l.p50_us),
            "p95_us_wall": lat(|l| l.p95_us),
            "p99_us_wall": lat(|l| l.p99_us),
            "mean_us_wall": lat(|l| l.mean_us),
            "max_us_wall": lat(|l| l.max_us),
        })
    }
}

/// FNV-1a, folding a response frame's canonical encoding into `hash`.
fn fold_response(mut hash: u64, response: &Response) -> u64 {
    let (tag, payload) = encode_response(response);
    for byte in std::iter::once(tag).chain(payload) {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn classify(response: &Response, report: &mut LoadReport) {
    match response {
        Response::Rejected(ApiError::Overloaded { .. }) => report.overloaded += 1,
        Response::Rejected(_) => report.rejected += 1,
        _ => report.ok += 1,
    }
}

fn empty_report() -> LoadReport {
    LoadReport {
        sent: 0,
        ok: 0,
        overloaded: 0,
        rejected: 0,
        retried: 0,
        redirected: 0,
        transport_errors: 0,
        checksum: FNV_OFFSET,
        elapsed_wall_s: 0.0,
        goodput_rps_wall: 0.0,
        latency: None,
    }
}

/// The retryable-rejection hint, if `response` carries one. The second
/// field reports whether the rejection was a `Relocated` redirect.
fn retry_hint(response: &Response) -> Option<(SimDuration, bool)> {
    match response {
        Response::Rejected(ApiError::Overloaded { retry_after_hint }) => {
            Some((*retry_after_hint, false))
        }
        Response::Rejected(ApiError::Relocated {
            retry_after_hint, ..
        }) => Some((*retry_after_hint, true)),
        _ => None,
    }
}

/// Longest real sleep one retry hint may cost. The *virtual* stamp of a
/// retried envelope always advances by the full hint (that is what the
/// server's clock acts on); the wall pause is a pacing courtesy, capped
/// so a large virtual hint cannot stall a smoke run.
const MAX_RETRY_SLEEP: std::time::Duration = std::time::Duration::from_millis(50);

/// Closed-loop driver: one connection, at most `window` requests in
/// flight. Returns a transport error only if the *connection itself*
/// cannot be established; per-response transport failures are counted
/// in the report.
///
/// `retries` is the per-envelope retry budget: an `Overloaded` or
/// `Relocated` rejection with budget left is re-sent with its virtual
/// stamp advanced by the rejection's `retry_after_hint` (and a capped
/// wall pause), and only the *final* response of each scheduled envelope
/// is classified and folded into the checksum — so a run that rides
/// through a cluster failover reports the same deterministic payload
/// facts as an undisturbed one, plus nonzero `retried`/`redirected`
/// counts.
pub fn run_closed(
    addr: &str,
    schedule: &[(SimTime, Request)],
    window: usize,
    retries: usize,
) -> Result<LoadReport, WireError> {
    let window = window.max(1);
    let mut client = NetClient::connect(addr)?;
    let mut report = empty_report();
    let mut latencies: Vec<f64> = Vec::with_capacity(schedule.len());

    // Envelopes not yet written, front-to-back; retries re-enter at the
    // head with their attempt count bumped, so a retried envelope keeps
    // its place in the schedule ahead of everything not yet sent (at
    // window 1 the whole run stays strictly in schedule order — the
    // configuration failover smokes use).
    let mut pending: std::collections::VecDeque<(SimTime, Request, usize)> = schedule
        .iter()
        .map(|(now, request)| (*now, request.clone(), 0usize))
        .collect();
    // Written but unanswered. One pipelined connection answers strictly
    // in submission order, so the front entry owns the next response.
    let mut outstanding: std::collections::VecDeque<(SimTime, Request, usize, Instant)> =
        std::collections::VecDeque::with_capacity(window);

    // Wall-clock reads are this crate's purpose (see crate docs and
    // analyze-allowlist.txt).
    #[allow(clippy::disallowed_methods)]
    let started = Instant::now();
    'drive: while !pending.is_empty() || !outstanding.is_empty() {
        while outstanding.len() < window {
            let Some((now, request, attempt)) = pending.pop_front() else {
                break;
            };
            #[allow(clippy::disallowed_methods)]
            let sent_at = Instant::now();
            client.send(now, &request)?;
            report.sent += 1;
            outstanding.push_back((now, request, attempt, sent_at));
        }
        let (now, request, attempt, sent_at) = outstanding.pop_front().expect("window is primed");
        match client.recv() {
            Ok(response) => {
                #[allow(clippy::disallowed_methods)]
                let at = Instant::now();
                latencies.push(at.duration_since(sent_at).as_secs_f64() * 1e6);
                match retry_hint(&response) {
                    Some((hint, relocated)) if attempt < retries => {
                        report.retried += 1;
                        if relocated {
                            report.redirected += 1;
                        }
                        std::thread::sleep(
                            std::time::Duration::from_micros(hint.as_micros()).min(MAX_RETRY_SLEEP),
                        );
                        pending.push_front((now + hint, request, attempt + 1));
                    }
                    _ => {
                        report.checksum = fold_response(report.checksum, &response);
                        classify(&response, &mut report);
                    }
                }
            }
            Err(_) => {
                report.transport_errors += 1 + outstanding.len();
                break 'drive;
            }
        }
    }
    finish(&mut report, latencies, started);
    Ok(report)
}

/// Open-loop burst driver: `connections` threads each write their slice
/// of the schedule as fast as the socket accepts it (no response
/// pacing), then drain responses. The per-connection checksums are
/// XOR-folded so the aggregate is independent of thread interleaving.
pub fn run_open_burst(
    addr: &str,
    schedule: &[(SimTime, Request)],
    connections: usize,
) -> LoadReport {
    let connections = connections.max(1);
    let slices: Vec<Vec<(SimTime, Request)>> = (0..connections)
        .map(|c| {
            schedule
                .iter()
                .skip(c)
                .step_by(connections)
                .cloned()
                .collect()
        })
        .collect();

    #[allow(clippy::disallowed_methods)]
    let started = Instant::now();
    let mut workers = Vec::new();
    for slice in slices {
        let addr = addr.to_string();
        workers.push(std::thread::spawn(move || run_burst_conn(&addr, &slice)));
    }
    let mut report = empty_report();
    let mut checksum = 0u64;
    let mut latencies = Vec::new();
    for worker in workers {
        match worker.join() {
            Ok((part, lats)) => {
                report.sent += part.sent;
                report.ok += part.ok;
                report.overloaded += part.overloaded;
                report.rejected += part.rejected;
                report.transport_errors += part.transport_errors;
                checksum ^= part.checksum;
                latencies.extend(lats);
            }
            Err(_) => report.transport_errors += 1,
        }
    }
    report.checksum = checksum;
    finish(&mut report, latencies, started);
    report
}

/// Paced open-loop driver: like [`run_open_burst`], but arrivals follow
/// a fixed-interval schedule at `rate` requests per second — request `k`
/// of the (global) schedule is written no earlier than `k / rate`
/// seconds after the run starts. Connections own interleaved slices, so
/// each sleeps toward its own requests' global due times; responses are
/// drained after the last send exactly as in the burst driver, keeping
/// the deterministic fields (sent/ok/rejected counts, checksum)
/// byte-identical between the two open-loop modes.
///
/// `rate == 0` degenerates to the burst driver (no pacing).
pub fn run_open_paced(
    addr: &str,
    schedule: &[(SimTime, Request)],
    connections: usize,
    rate: u64,
) -> LoadReport {
    if rate == 0 {
        return run_open_burst(addr, schedule, connections);
    }
    let connections = connections.max(1);
    let slices: Vec<Vec<(usize, SimTime, Request)>> = (0..connections)
        .map(|c| {
            schedule
                .iter()
                .enumerate()
                .skip(c)
                .step_by(connections)
                .map(|(k, (now, request))| (k, *now, request.clone()))
                .collect()
        })
        .collect();
    let interval_us = 1e6 / rate as f64;

    #[allow(clippy::disallowed_methods)]
    let started = Instant::now();
    let mut workers = Vec::new();
    for slice in slices {
        let addr = addr.to_string();
        workers.push(std::thread::spawn(move || {
            run_paced_conn(&addr, &slice, started, interval_us)
        }));
    }
    let mut report = empty_report();
    let mut checksum = 0u64;
    let mut latencies = Vec::new();
    for worker in workers {
        match worker.join() {
            Ok((part, lats)) => {
                report.sent += part.sent;
                report.ok += part.ok;
                report.overloaded += part.overloaded;
                report.rejected += part.rejected;
                report.transport_errors += part.transport_errors;
                checksum ^= part.checksum;
                latencies.extend(lats);
            }
            Err(_) => report.transport_errors += 1,
        }
    }
    report.checksum = checksum;
    finish(&mut report, latencies, started);
    report
}

fn run_paced_conn(
    addr: &str,
    slice: &[(usize, SimTime, Request)],
    started: Instant,
    interval_us: f64,
) -> (LoadReport, Vec<f64>) {
    let mut report = empty_report();
    let mut latencies = Vec::with_capacity(slice.len());
    let Ok(mut client) = NetClient::connect(addr) else {
        report.transport_errors += slice.len();
        return (report, latencies);
    };
    let mut send_times = Vec::with_capacity(slice.len());
    for (k, now, request) in slice {
        let due = std::time::Duration::from_micros((*k as f64 * interval_us) as u64);
        // Wall-clock reads are this crate's purpose (see crate docs and
        // analyze-allowlist.txt).
        #[allow(clippy::disallowed_methods)]
        let elapsed = started.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        }
        #[allow(clippy::disallowed_methods)]
        send_times.push(Instant::now());
        if client.send(*now, request).is_err() {
            report.transport_errors += 1;
            return (report, latencies);
        }
        report.sent += 1;
    }
    if client.finish_sending().is_err() {
        report.transport_errors += 1;
        return (report, latencies);
    }
    for (received, sent_at) in send_times.iter().enumerate().take(report.sent) {
        match client.recv() {
            Ok(response) => {
                #[allow(clippy::disallowed_methods)]
                let at = Instant::now();
                latencies.push(at.duration_since(*sent_at).as_secs_f64() * 1e6);
                report.checksum = fold_response(report.checksum, &response);
                classify(&response, &mut report);
            }
            Err(_) => {
                report.transport_errors += report.sent - received;
                break;
            }
        }
    }
    (report, latencies)
}

fn run_burst_conn(addr: &str, slice: &[(SimTime, Request)]) -> (LoadReport, Vec<f64>) {
    let mut report = empty_report();
    let mut latencies = Vec::with_capacity(slice.len());
    let Ok(mut client) = NetClient::connect(addr) else {
        report.transport_errors += slice.len();
        return (report, latencies);
    };
    let mut send_times = Vec::with_capacity(slice.len());
    for (now, request) in slice {
        #[allow(clippy::disallowed_methods)]
        send_times.push(Instant::now());
        if client.send(*now, request).is_err() {
            report.transport_errors += 1;
            return (report, latencies);
        }
        report.sent += 1;
    }
    if client.finish_sending().is_err() {
        report.transport_errors += 1;
        return (report, latencies);
    }
    for (received, sent_at) in send_times.iter().enumerate().take(report.sent) {
        match client.recv() {
            Ok(response) => {
                #[allow(clippy::disallowed_methods)]
                let at = Instant::now();
                latencies.push(at.duration_since(*sent_at).as_secs_f64() * 1e6);
                report.checksum = fold_response(report.checksum, &response);
                classify(&response, &mut report);
            }
            Err(_) => {
                report.transport_errors += report.sent - received;
                break;
            }
        }
    }
    (report, latencies)
}

/// Connection-limit probe: opens `attempts` simultaneous idle
/// connections and sends a `Stats` request on each; returns
/// `(served, overloaded, transport_errors)`. Against a server with
/// `max_connections < attempts`, the excess connections must receive a
/// typed `Overloaded` envelope and a clean close — never a reset.
pub fn probe_connection_limit(addr: &str, attempts: usize) -> (usize, usize, usize) {
    let mut clients = Vec::new();
    let mut overloaded = 0usize;
    let mut errors = 0usize;
    for _ in 0..attempts {
        match NetClient::connect(addr) {
            Ok(c) => clients.push(c),
            Err(_) => errors += 1,
        }
    }
    let mut served = 0usize;
    for client in &mut clients {
        if client.send(SimTime::ZERO, &Request::Stats).is_err() {
            // The server half-closed an over-limit connection; its
            // Overloaded envelope is still readable below.
        }
        match client.recv() {
            Ok(Response::Stats(_)) => served += 1,
            Ok(Response::Rejected(ApiError::Overloaded { .. })) => overloaded += 1,
            Ok(_) => {}
            Err(_) => errors += 1,
        }
    }
    (served, overloaded, errors)
}

fn finish(report: &mut LoadReport, latencies: Vec<f64>, started: Instant) {
    report.elapsed_wall_s = started.elapsed().as_secs_f64();
    report.goodput_rps_wall = if report.elapsed_wall_s > 0.0 {
        report.ok as f64 / report.elapsed_wall_s
    } else {
        0.0
    };
    report.latency = LatencyStats::from_samples(latencies);
}
