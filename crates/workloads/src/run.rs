//! Dispatch: execute a request against fetched metadata.
//!
//! [`execute`] is storage-agnostic — FLStore invokes it *inside* the
//! function holding the data; the baselines invoke it on the aggregator VM
//! after fetching the same values across the network. Identical inputs,
//! identical outputs; only latency and cost differ.

use std::borrow::Borrow;
use std::error::Error;
use std::fmt;

use flstore_cloud::compute::WorkUnits;
use flstore_fl::aggregate::AggregateModel;
use flstore_fl::hyperparams::HyperParams;
use flstore_fl::metadata::MetaValue;
use flstore_fl::metrics::RoundMetrics;
use flstore_fl::update::ModelUpdate;
use flstore_sim::bytes::ByteSize;

use crate::apps;
use crate::outputs::WorkloadOutput;
use crate::request::WorkloadRequest;
use crate::taxonomy::WorkloadKind;

/// Number of participants selected by scheduling workloads.
pub const SCHEDULE_K: usize = 10;

/// Failures while executing a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The fetched values did not contain the inputs the workload needs.
    MissingInput {
        /// Which workload.
        kind: WorkloadKind,
        /// What was missing.
        what: &'static str,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::MissingInput { kind, what } => {
                write!(f, "{kind} is missing required input: {what}")
            }
        }
    }
}

impl Error for WorkloadError {}

/// Result of executing a workload: the typed output plus the compute demand
/// and response size the serving system must account for.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadOutcome {
    /// The computed result.
    pub output: WorkloadOutput,
    /// Compute demand of the execution.
    pub work: WorkUnits,
    /// Size of the response returned to the requester.
    pub result_bytes: ByteSize,
}

struct SplitValues<'a> {
    updates: Vec<&'a ModelUpdate>,
    aggregates: Vec<&'a AggregateModel>,
    metrics: Vec<&'a RoundMetrics>,
    #[allow(dead_code)] // consumed by hyperparameter-tracking extensions
    hypers: Vec<&'a HyperParams>,
}

fn split<V: Borrow<MetaValue>>(values: &[V]) -> SplitValues<'_> {
    let mut s = SplitValues {
        updates: Vec::new(),
        aggregates: Vec::new(),
        metrics: Vec::new(),
        hypers: Vec::new(),
    };
    for v in values {
        match v.borrow() {
            MetaValue::Update(u) => s.updates.push(u),
            MetaValue::Aggregate(a) => s.aggregates.push(a),
            MetaValue::Metrics(m) => s.metrics.push(m),
            MetaValue::Hyper(h) => s.hypers.push(h),
        }
    }
    s.aggregates.sort_by_key(|a| a.round);
    s.metrics.sort_by_key(|m| m.round);
    s.hypers.sort_by_key(|h| h.round);
    s
}

fn missing(kind: WorkloadKind, what: &'static str) -> WorkloadError {
    WorkloadError::MissingInput { kind, what }
}

/// Executes `request` over the fetched `values`.
///
/// Generic over how the caller holds its metadata: plain `MetaValue`s
/// (baseline fetch-and-decode) and shared `Arc<MetaValue>` handles from a
/// decoded-value cache (`flstore_fl::decoded::DecodedCache`) both satisfy
/// `Borrow<MetaValue>`, so every serving system feeds the same dispatch
/// without copying or re-parsing.
///
/// `model_scale` is the job model's compute scale
/// ([`flstore_fl::zoo::ModelArch::compute_scale`]); randomized workloads
/// derive their seed from the request id, so identical requests produce
/// identical results.
///
/// # Errors
///
/// Returns [`WorkloadError::MissingInput`] when `values` lacks the inputs
/// Table 1 prescribes for the workload class.
pub fn execute<V: Borrow<MetaValue>>(
    request: &WorkloadRequest,
    values: &[V],
    model_scale: f64,
) -> Result<WorkloadOutcome, WorkloadError> {
    let kind = request.kind;
    let seed = request.id.as_u64();
    let s = split(values);

    let round_aggregate = || {
        s.aggregates
            .iter()
            .find(|a| a.round == request.round)
            .or_else(|| s.aggregates.last())
            .copied()
    };

    let output = match kind {
        WorkloadKind::CosineSimilarity => {
            let agg = round_aggregate().ok_or_else(|| missing(kind, "round aggregate"))?;
            apps::cosine::run(&s.updates, agg)
                .map(WorkloadOutput::Cosine)
                .ok_or_else(|| missing(kind, "round updates"))?
        }
        WorkloadKind::MaliciousFiltering => apps::filtering::run(&s.updates)
            .map(WorkloadOutput::Filtering)
            .ok_or_else(|| missing(kind, "round updates"))?,
        WorkloadKind::Clustering => {
            apps::clustering::run(&s.updates, apps::clustering::DEFAULT_K, seed)
                .map(WorkloadOutput::Clustering)
                .ok_or_else(|| missing(kind, "round updates"))?
        }
        WorkloadKind::Personalized => {
            apps::personalization::run(&s.updates, apps::clustering::DEFAULT_K, seed)
                .map(WorkloadOutput::Personalization)
                .ok_or_else(|| missing(kind, "round updates"))?
        }
        WorkloadKind::SchedulingCluster => apps::sched_cluster::run(&s.updates)
            .map(WorkloadOutput::SchedCluster)
            .ok_or_else(|| missing(kind, "round updates"))?,
        WorkloadKind::Incentives => {
            let agg = round_aggregate().ok_or_else(|| missing(kind, "round aggregate"))?;
            apps::incentives::run(&s.updates, agg)
                .map(WorkloadOutput::Incentives)
                .ok_or_else(|| missing(kind, "round updates"))?
        }
        WorkloadKind::SchedulingPerf => apps::sched_perf::run(&s.metrics, SCHEDULE_K)
            .map(WorkloadOutput::SchedPerf)
            .ok_or_else(|| missing(kind, "round metrics window"))?,
        WorkloadKind::ReputationCalc => {
            let client = request
                .client
                .ok_or_else(|| missing(kind, "target client"))?;
            apps::reputation::run(client, &s.updates, &s.aggregates)
                .map(WorkloadOutput::Reputation)
                .ok_or_else(|| missing(kind, "client updates across rounds"))?
        }
        WorkloadKind::Debugging => {
            let client = request
                .client
                .ok_or_else(|| missing(kind, "target client"))?;
            apps::debugging::run(client, &s.updates, &s.aggregates)
                .map(WorkloadOutput::Debugging)
                .ok_or_else(|| missing(kind, "client updates across rounds"))?
        }
        WorkloadKind::Inference => {
            let agg = round_aggregate().ok_or_else(|| missing(kind, "aggregated model"))?;
            apps::inference::run(agg, apps::inference::DEFAULT_BATCH, seed)
                .map(WorkloadOutput::Inference)
                .ok_or_else(|| missing(kind, "aggregated model"))?
        }
    };

    let work = kind.work_units(values.len(), model_scale);
    let result_bytes = output.result_bytes();
    Ok(WorkloadOutcome {
        output,
        work,
        result_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{JobCatalog, RequestId};
    use crate::testutil::{lookup, sample_rounds};
    use flstore_fl::ids::JobId;
    use flstore_fl::zoo::ModelArch;

    fn values_for(
        kind: WorkloadKind,
        records: &[flstore_fl::job::RoundRecord],
    ) -> (WorkloadRequest, Vec<MetaValue>) {
        let job = JobId::new(1);
        let mut catalog = JobCatalog::new(job, ModelArch::RESNET18);
        for r in records {
            catalog.observe_round(r);
        }
        let last = records.last().expect("rounds");
        let client = match kind.policy_class() {
            crate::taxonomy::PolicyClass::P3AcrossRounds => Some(last.updates[0].client),
            _ => None,
        };
        let request = WorkloadRequest::new(RequestId::new(7), kind, job, last.round, client);
        let keys = catalog.data_needs(&request);
        let values = keys.iter().filter_map(|k| lookup(records, k)).collect();
        (request, values)
    }

    #[test]
    fn every_workload_executes_end_to_end() {
        let records = sample_rounds(12, 0.2);
        for kind in WorkloadKind::ALL {
            let (request, values) = values_for(kind, &records);
            let outcome =
                execute(&request, &values, 1.0).unwrap_or_else(|e| panic!("{kind} failed: {e}"));
            assert!(outcome.work.as_ref_seconds() > 0.0, "{kind} has zero work");
            assert!(outcome.result_bytes > ByteSize::ZERO);
        }
    }

    #[test]
    fn outputs_match_requested_kind() {
        let records = sample_rounds(12, 0.0);
        let (req, vals) = values_for(WorkloadKind::Clustering, &records);
        let out = execute(&req, &vals, 1.0).expect("ok");
        assert!(matches!(out.output, WorkloadOutput::Clustering(_)));

        let (req, vals) = values_for(WorkloadKind::SchedulingPerf, &records);
        let out = execute(&req, &vals, 1.0).expect("ok");
        assert!(matches!(out.output, WorkloadOutput::SchedPerf(_)));
    }

    #[test]
    fn empty_values_error_cleanly() {
        let records = sample_rounds(3, 0.0);
        let (request, _) = values_for(WorkloadKind::MaliciousFiltering, &records);
        let err = execute::<MetaValue>(&request, &[], 1.0).unwrap_err();
        assert!(matches!(err, WorkloadError::MissingInput { .. }));
        assert!(err.to_string().contains("Malicious Filtering"));
    }

    #[test]
    fn execution_is_deterministic() {
        let records = sample_rounds(10, 0.1);
        let (request, values) = values_for(WorkloadKind::Clustering, &records);
        let a = execute(&request, &values, 1.0).expect("ok");
        let b = execute(&request, &values, 1.0).expect("ok");
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn work_scales_with_model() {
        let records = sample_rounds(5, 0.0);
        let (request, values) = values_for(WorkloadKind::MaliciousFiltering, &records);
        let small = execute(&request, &values, 0.2).expect("ok");
        let large = execute(&request, &values, 2.0).expect("ok");
        assert!(large.work.as_ref_seconds() > small.work.as_ref_seconds());
    }
}
