//! Dispatch: execute a request against fetched metadata.
//!
//! [`execute`] is storage-agnostic — FLStore invokes it *inside* the
//! function holding the data; the baselines invoke it on the aggregator VM
//! after fetching the same values across the network. Identical inputs,
//! identical outputs; only latency and cost differ.

use std::borrow::Borrow;
use std::error::Error;
use std::fmt;

use flstore_cloud::compute::WorkUnits;
use flstore_fl::aggregate::AggregateModel;
use flstore_fl::hyperparams::HyperParams;
use flstore_fl::metadata::{MetaValue, SharedValue};
use flstore_fl::metrics::RoundMetrics;
use flstore_fl::update::ModelUpdate;
use flstore_sim::bytes::ByteSize;

use crate::apps;
use crate::outputs::WorkloadOutput;
use crate::request::WorkloadRequest;
use crate::taxonomy::WorkloadKind;

/// Number of participants selected by scheduling workloads.
pub const SCHEDULE_K: usize = 10;

/// Failures while executing a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The fetched values did not contain the inputs the workload needs.
    MissingInput {
        /// Which workload.
        kind: WorkloadKind,
        /// What was missing.
        what: &'static str,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::MissingInput { kind, what } => {
                write!(f, "{kind} is missing required input: {what}")
            }
        }
    }
}

impl Error for WorkloadError {}

/// Result of executing a workload: the typed output plus the compute demand
/// and response size the serving system must account for.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadOutcome {
    /// The computed result.
    pub output: WorkloadOutput,
    /// Compute demand of the execution.
    pub work: WorkUnits,
    /// Size of the response returned to the requester.
    pub result_bytes: ByteSize,
}

struct SplitValues<'a> {
    updates: Vec<&'a ModelUpdate>,
    aggregates: Vec<&'a AggregateModel>,
    metrics: Vec<&'a RoundMetrics>,
    #[allow(dead_code)] // consumed by hyperparameter-tracking extensions
    hypers: Vec<&'a HyperParams>,
}

fn split<V: Borrow<MetaValue>>(values: &[V]) -> SplitValues<'_> {
    let mut s = SplitValues {
        updates: Vec::new(),
        aggregates: Vec::new(),
        metrics: Vec::new(),
        hypers: Vec::new(),
    };
    for v in values {
        match v.borrow() {
            MetaValue::Update(u) => s.updates.push(u),
            MetaValue::Aggregate(a) => s.aggregates.push(a),
            MetaValue::Metrics(m) => s.metrics.push(m),
            MetaValue::Hyper(h) => s.hypers.push(h),
        }
    }
    s.aggregates.sort_by_key(|a| a.round);
    s.metrics.sort_by_key(|m| m.round);
    s.hypers.sort_by_key(|h| h.round);
    s
}

fn missing(kind: WorkloadKind, what: &'static str) -> WorkloadError {
    WorkloadError::MissingInput { kind, what }
}

/// Executes `request` over the fetched `values`.
///
/// Generic over how the caller holds its metadata: plain `MetaValue`s
/// (baseline fetch-and-decode) and shared `Arc<MetaValue>` handles from a
/// decoded-value cache (`flstore_fl::decoded::DecodedCache`) both satisfy
/// `Borrow<MetaValue>`, so every serving system feeds the same dispatch
/// without copying or re-parsing.
///
/// `model_scale` is the job model's compute scale
/// ([`flstore_fl::zoo::ModelArch::compute_scale`]); randomized workloads
/// derive their seed from the request id, so identical requests produce
/// identical results.
///
/// # Errors
///
/// Returns [`WorkloadError::MissingInput`] when `values` lacks the inputs
/// Table 1 prescribes for the workload class.
pub fn execute<V: Borrow<MetaValue>>(
    request: &WorkloadRequest,
    values: &[V],
    model_scale: f64,
) -> Result<WorkloadOutcome, WorkloadError> {
    let s = split(values);
    validate(request, &s)?;
    let output = run_kernel(request, &s);
    let work = request.kind.work_units(values.len(), model_scale);
    let result_bytes = output.result_bytes();
    Ok(WorkloadOutcome {
        output,
        work,
        result_bytes,
    })
}

fn round_aggregate<'a>(
    s: &SplitValues<'a>,
    request: &WorkloadRequest,
) -> Option<&'a AggregateModel> {
    s.aggregates
        .iter()
        .find(|a| a.round == request.round)
        .or_else(|| s.aggregates.last())
        .copied()
}

/// Checks `request`'s input contract against the split values without
/// running the kernel.
///
/// This is the cheap half of [`execute`]: every emptiness / presence
/// condition under which a kernel would decline to run, and nothing
/// else. [`execute`] is literally `validate` followed by [`run_kernel`],
/// so a mismatch between the two cannot hide: too strict fails the
/// end-to-end tests with an error, too lax panics in `run_kernel`.
fn validate(request: &WorkloadRequest, s: &SplitValues<'_>) -> Result<(), WorkloadError> {
    let kind = request.kind;
    match kind {
        WorkloadKind::CosineSimilarity | WorkloadKind::Incentives => {
            if round_aggregate(s, request).is_none() {
                return Err(missing(kind, "round aggregate"));
            }
            if s.updates.is_empty() {
                return Err(missing(kind, "round updates"));
            }
        }
        WorkloadKind::MaliciousFiltering
        | WorkloadKind::Clustering
        | WorkloadKind::Personalized
        | WorkloadKind::SchedulingCluster => {
            if s.updates.is_empty() {
                return Err(missing(kind, "round updates"));
            }
        }
        WorkloadKind::SchedulingPerf => {
            if s.metrics.is_empty() {
                return Err(missing(kind, "round metrics window"));
            }
        }
        WorkloadKind::ReputationCalc | WorkloadKind::Debugging => {
            let client = request
                .client
                .ok_or_else(|| missing(kind, "target client"))?;
            // The P3 kernels trace one client across rounds; an update only
            // contributes when its round also has an aggregate to score
            // against, so the trace is empty exactly when no such pair
            // exists.
            let traceable = s
                .updates
                .iter()
                .any(|u| u.client == client && s.aggregates.iter().any(|a| a.round == u.round));
            if !traceable {
                return Err(missing(kind, "client updates across rounds"));
            }
        }
        WorkloadKind::Inference => {
            let weights_present = round_aggregate(s, request)
                .map(|agg| !agg.weights.is_empty())
                .unwrap_or(false);
            if !weights_present {
                return Err(missing(kind, "aggregated model"));
            }
        }
    }
    Ok(())
}

/// Runs the kernel for `request` over values that already passed
/// [`validate`].
///
/// # Panics
///
/// Panics if a kernel declines inputs that `validate` admitted — that is a
/// contract bug between the two halves, never a data error.
fn run_kernel(request: &WorkloadRequest, s: &SplitValues<'_>) -> WorkloadOutput {
    const CONTRACT: &str = "validate() admitted inputs the kernel rejected";
    let kind = request.kind;
    let seed = request.id.as_u64();
    match kind {
        WorkloadKind::CosineSimilarity => {
            let agg = round_aggregate(s, request).expect(CONTRACT);
            apps::cosine::run(&s.updates, agg)
                .map(WorkloadOutput::Cosine)
                .expect(CONTRACT)
        }
        WorkloadKind::MaliciousFiltering => apps::filtering::run(&s.updates)
            .map(WorkloadOutput::Filtering)
            .expect(CONTRACT),
        WorkloadKind::Clustering => {
            apps::clustering::run(&s.updates, apps::clustering::DEFAULT_K, seed)
                .map(WorkloadOutput::Clustering)
                .expect(CONTRACT)
        }
        WorkloadKind::Personalized => {
            apps::personalization::run(&s.updates, apps::clustering::DEFAULT_K, seed)
                .map(WorkloadOutput::Personalization)
                .expect(CONTRACT)
        }
        WorkloadKind::SchedulingCluster => apps::sched_cluster::run(&s.updates)
            .map(WorkloadOutput::SchedCluster)
            .expect(CONTRACT),
        WorkloadKind::Incentives => {
            let agg = round_aggregate(s, request).expect(CONTRACT);
            apps::incentives::run(&s.updates, agg)
                .map(WorkloadOutput::Incentives)
                .expect(CONTRACT)
        }
        WorkloadKind::SchedulingPerf => apps::sched_perf::run(&s.metrics, SCHEDULE_K)
            .map(WorkloadOutput::SchedPerf)
            .expect(CONTRACT),
        WorkloadKind::ReputationCalc => {
            let client = request.client.expect(CONTRACT);
            apps::reputation::run(client, &s.updates, &s.aggregates)
                .map(WorkloadOutput::Reputation)
                .expect(CONTRACT)
        }
        WorkloadKind::Debugging => {
            let client = request.client.expect(CONTRACT);
            apps::debugging::run(client, &s.updates, &s.aggregates)
                .map(WorkloadOutput::Debugging)
                .expect(CONTRACT)
        }
        WorkloadKind::Inference => {
            let agg = round_aggregate(s, request).expect(CONTRACT);
            apps::inference::run(agg, apps::inference::DEFAULT_BATCH, seed)
                .map(WorkloadOutput::Inference)
                .expect(CONTRACT)
        }
    }
}

/// A validated, not-yet-computed execution: the expensive kernel half of
/// [`execute`], detached from the serving thread.
///
/// [`prepare`] performs exactly the input validation and work-unit
/// accounting of [`execute`]; the returned task owns `Arc` handles to its
/// inputs and is `Send`, so a work-stealing worker can run [`compute`]
/// (the pure kernel) on any thread and obtain bit-for-bit the outcome the
/// serving thread would have produced inline.
///
/// [`compute`]: PreparedExecute::compute
#[derive(Debug, Clone)]
pub struct PreparedExecute {
    request: WorkloadRequest,
    values: Vec<SharedValue>,
    work: WorkUnits,
}

impl PreparedExecute {
    /// Compute demand of the pending execution (known at prepare time —
    /// the serving system bills it before the kernel runs).
    pub fn work(&self) -> WorkUnits {
        self.work
    }

    /// Runs the kernel. Pure: no shared state, deterministic in the
    /// request id, identical to the inline [`execute`] result.
    pub fn compute(&self) -> WorkloadOutcome {
        let s = split(&self.values);
        debug_assert!(validate(&self.request, &s).is_ok(), "prepare() validated");
        let output = run_kernel(&self.request, &s);
        let result_bytes = output.result_bytes();
        WorkloadOutcome {
            output,
            work: self.work,
            result_bytes,
        }
    }
}

/// Validates `request` against owned `values` and packages the deferred
/// kernel execution.
///
/// # Errors
///
/// Returns exactly the [`WorkloadError::MissingInput`] that [`execute`]
/// would: both are the same `validate` pass over the same split.
pub fn prepare(
    request: &WorkloadRequest,
    values: Vec<SharedValue>,
    model_scale: f64,
) -> Result<PreparedExecute, WorkloadError> {
    let s = split(&values);
    validate(request, &s)?;
    let work = request.kind.work_units(values.len(), model_scale);
    drop(s);
    Ok(PreparedExecute {
        request: *request,
        values,
        work,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{JobCatalog, RequestId};
    use crate::testutil::{lookup, sample_rounds};
    use flstore_fl::ids::JobId;
    use flstore_fl::zoo::ModelArch;

    fn values_for(
        kind: WorkloadKind,
        records: &[flstore_fl::job::RoundRecord],
    ) -> (WorkloadRequest, Vec<MetaValue>) {
        let job = JobId::new(1);
        let mut catalog = JobCatalog::new(job, ModelArch::RESNET18);
        for r in records {
            catalog.observe_round(r);
        }
        let last = records.last().expect("rounds");
        let client = match kind.policy_class() {
            crate::taxonomy::PolicyClass::P3AcrossRounds => Some(last.updates[0].client),
            _ => None,
        };
        let request = WorkloadRequest::new(RequestId::new(7), kind, job, last.round, client);
        let keys = catalog.data_needs(&request);
        let values = keys.iter().filter_map(|k| lookup(records, k)).collect();
        (request, values)
    }

    #[test]
    fn every_workload_executes_end_to_end() {
        let records = sample_rounds(12, 0.2);
        for kind in WorkloadKind::ALL {
            let (request, values) = values_for(kind, &records);
            let outcome =
                execute(&request, &values, 1.0).unwrap_or_else(|e| panic!("{kind} failed: {e}"));
            assert!(outcome.work.as_ref_seconds() > 0.0, "{kind} has zero work");
            assert!(outcome.result_bytes > ByteSize::ZERO);
        }
    }

    #[test]
    fn outputs_match_requested_kind() {
        let records = sample_rounds(12, 0.0);
        let (req, vals) = values_for(WorkloadKind::Clustering, &records);
        let out = execute(&req, &vals, 1.0).expect("ok");
        assert!(matches!(out.output, WorkloadOutput::Clustering(_)));

        let (req, vals) = values_for(WorkloadKind::SchedulingPerf, &records);
        let out = execute(&req, &vals, 1.0).expect("ok");
        assert!(matches!(out.output, WorkloadOutput::SchedPerf(_)));
    }

    #[test]
    fn empty_values_error_cleanly() {
        let records = sample_rounds(3, 0.0);
        let (request, _) = values_for(WorkloadKind::MaliciousFiltering, &records);
        let err = execute::<MetaValue>(&request, &[], 1.0).unwrap_err();
        assert!(matches!(err, WorkloadError::MissingInput { .. }));
        assert!(err.to_string().contains("Malicious Filtering"));
    }

    #[test]
    fn execution_is_deterministic() {
        let records = sample_rounds(10, 0.1);
        let (request, values) = values_for(WorkloadKind::Clustering, &records);
        let a = execute(&request, &values, 1.0).expect("ok");
        let b = execute(&request, &values, 1.0).expect("ok");
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn work_scales_with_model() {
        let records = sample_rounds(5, 0.0);
        let (request, values) = values_for(WorkloadKind::MaliciousFiltering, &records);
        let small = execute(&request, &values, 0.2).expect("ok");
        let large = execute(&request, &values, 2.0).expect("ok");
        assert!(large.work.as_ref_seconds() > small.work.as_ref_seconds());
    }

    fn shared(values: &[MetaValue]) -> Vec<SharedValue> {
        values.iter().cloned().map(std::sync::Arc::new).collect()
    }

    #[test]
    fn prepare_then_compute_matches_inline_execute_for_every_kind() {
        let records = sample_rounds(12, 0.2);
        for kind in WorkloadKind::ALL {
            let (request, values) = values_for(kind, &records);
            let inline = execute(&request, &values, 1.0).expect("inline");
            let task = prepare(&request, shared(&values), 1.0).expect("prepare");
            assert_eq!(task.work(), inline.work, "{kind} work at prepare time");
            let deferred = task.compute();
            assert_eq!(deferred, inline, "{kind} deferred != inline");
            // Recompute is pure: same task, same outcome.
            assert_eq!(task.compute(), inline, "{kind} recompute drifted");
        }
    }

    #[test]
    fn prepare_rejects_exactly_like_execute() {
        let records = sample_rounds(3, 0.0);
        // Degenerate shapes per failure class: empty values for everyone,
        // plus a client-less P3 request and an aggregate-less trace.
        for kind in WorkloadKind::ALL {
            let (request, _) = values_for(kind, &records);
            let inline = execute::<MetaValue>(&request, &[], 1.0).unwrap_err();
            let deferred = prepare(&request, Vec::new(), 1.0).unwrap_err();
            assert_eq!(inline, deferred, "{kind} empty-values error drifted");
        }
        let (request, values) = values_for(WorkloadKind::Debugging, &records);
        // A client whose rounds never have a matching aggregate: strip the
        // aggregates so the P3 trace is empty.
        let updates_only: Vec<MetaValue> = values
            .iter()
            .filter(|v| matches!(v, MetaValue::Update(_)))
            .cloned()
            .collect();
        let inline = execute(&request, &updates_only, 1.0).unwrap_err();
        let deferred = prepare(&request, shared(&updates_only), 1.0).unwrap_err();
        assert_eq!(inline, deferred);
        assert!(inline.to_string().contains("across rounds"));
    }

    #[test]
    fn prepared_execute_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<PreparedExecute>();
    }
}
