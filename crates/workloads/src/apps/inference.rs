//! Inference serving (P1).
//!
//! Serves the aggregated model: scores a batch of synthetic inputs with a
//! linear probe over the (reduced) aggregate weights. Deterministic under
//! the request seed so repeated requests are reproducible.

use flstore_fl::aggregate::AggregateModel;
use flstore_fl::weights::WeightVector;
use flstore_sim::rng::DetRng;

use crate::outputs::InferenceOutput;

/// Default batch size served per request.
pub const DEFAULT_BATCH: usize = 32;

/// Scores `batch` synthetic inputs against the aggregate.
///
/// Returns `None` when the aggregate has no weights.
pub fn run(aggregate: &AggregateModel, batch: usize, seed: u64) -> Option<InferenceOutput> {
    if aggregate.weights.is_empty() || batch == 0 {
        return None;
    }
    let dim = aggregate.weights.dim();
    let mut rng = DetRng::stream(seed, "inference-batch");
    let scale = (dim as f64).sqrt();
    let mut total = 0.0;
    for _ in 0..batch {
        let input = WeightVector::gaussian(&mut rng, dim, 1.0);
        let logit = aggregate.weights.dot(&input) / scale;
        total += 1.0 / (1.0 + (-logit).exp()); // sigmoid score
    }
    Some(InferenceOutput {
        batch,
        mean_score: total / batch as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::sample_rounds;

    #[test]
    fn scores_are_probabilities() {
        let rounds = sample_rounds(3, 0.0);
        let out = run(&rounds[2].aggregate, DEFAULT_BATCH, 9).expect("non-empty");
        assert_eq!(out.batch, DEFAULT_BATCH);
        assert!((0.0..=1.0).contains(&out.mean_score));
    }

    #[test]
    fn deterministic_under_seed() {
        let rounds = sample_rounds(2, 0.0);
        let a = run(&rounds[1].aggregate, 16, 5).expect("ok");
        let b = run(&rounds[1].aggregate, 16, 5).expect("ok");
        assert_eq!(a, b);
        let c = run(&rounds[1].aggregate, 16, 6).expect("ok");
        assert_ne!(a.mean_score, c.mean_score);
    }

    #[test]
    fn zero_batch_is_none() {
        let rounds = sample_rounds(1, 0.0);
        assert!(run(&rounds[0].aggregate, 0, 1).is_none());
    }
}
