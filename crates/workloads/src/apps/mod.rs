//! The ten workload implementations.
//!
//! Each submodule is a pure function over typed FL metadata — no storage,
//! no clocks — so the same implementation runs identically on FLStore's
//! serverless functions and on the baselines' aggregator VM.

pub mod clustering;
pub mod cosine;
pub mod debugging;
pub mod filtering;
pub mod incentives;
pub mod inference;
pub mod personalization;
pub mod reputation;
pub mod sched_cluster;
pub mod sched_perf;
