//! Personalization grouping (P2).
//!
//! Groups a round's clients by model behaviour (update direction plus local
//! accuracy) so each group can receive a personalized fine-tuning plan
//! (Tan et al. 2022/2023 class of systems).

use flstore_fl::update::ModelUpdate;
use flstore_fl::weights::WeightVector;

use crate::algorithms::kmeans;
use crate::outputs::PersonalizationOutput;

/// Groups one round's participants into at most `k` personalization groups.
/// Deterministic under `seed`.
///
/// Returns `None` when `updates` is empty or `k == 0`.
pub fn run(updates: &[&ModelUpdate], k: usize, seed: u64) -> Option<PersonalizationOutput> {
    if updates.is_empty() || k == 0 {
        return None;
    }
    // Feature = weight direction with local accuracy appended as an extra
    // (scaled) dimension, so groups reflect both what the model learned and
    // how well it fits local data.
    let features: Vec<WeightVector> = updates
        .iter()
        .map(|u| {
            let mut values: Vec<f32> = u.weights.as_slice().to_vec();
            let norm = u.weights.l2_norm().max(1e-9);
            values.iter_mut().for_each(|v| *v /= norm as f32);
            values.push((u.metrics.local_accuracy * 2.0) as f32);
            WeightVector::from_vec(values)
        })
        .collect();
    let refs: Vec<&WeightVector> = features.iter().collect();
    let result = kmeans(&refs, k, 50, seed)?;

    let k_used = result.centroids.len();
    let mut acc_sum = vec![0.0f64; k_used];
    let mut acc_count = vec![0usize; k_used];
    let groups: Vec<_> = updates
        .iter()
        .zip(&result.assignments)
        .map(|(u, a)| {
            acc_sum[*a] += u.metrics.local_accuracy;
            acc_count[*a] += 1;
            (u.client, *a)
        })
        .collect();
    let group_accuracy = acc_sum
        .iter()
        .zip(&acc_count)
        .map(|(s, c)| if *c == 0 { 0.0 } else { s / *c as f64 })
        .collect();
    Some(PersonalizationOutput {
        groups,
        group_accuracy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{sample_rounds, sample_rounds_with, TestJob};

    #[test]
    fn groups_every_participant_once() {
        let rounds = sample_rounds(4, 0.0);
        let last = rounds.last().expect("rounds");
        let updates: Vec<&ModelUpdate> = last.updates.iter().collect();
        let out = run(&updates, 3, 1).expect("non-empty");
        assert_eq!(out.groups.len(), updates.len());
        assert!(out
            .groups
            .iter()
            .all(|(_, g)| *g < out.group_accuracy.len()));
    }

    #[test]
    fn group_accuracies_are_probabilities() {
        let TestJob { records, .. } = sample_rounds_with(6, 0.2, 20, 20);
        let last = records.last().expect("rounds");
        let updates: Vec<&ModelUpdate> = last.updates.iter().collect();
        let out = run(&updates, 4, 2).expect("non-empty");
        for acc in &out.group_accuracy {
            assert!((0.0..=1.0).contains(acc), "accuracy {acc}");
        }
    }

    #[test]
    fn empty_is_none() {
        assert!(run(&[], 3, 0).is_none());
    }
}
