//! Reputation calculation (P3).
//!
//! Tracks one client across consecutive rounds: each participation earns a
//! contribution score (alignment between the client's update and that
//! round's aggregate), and reputation is the recency-weighted average —
//! the primitive behind reputation-aware incentive systems (Khan et al.
//! 2024c, Hu et al. 2022).

use std::collections::HashMap;

use flstore_fl::aggregate::AggregateModel;
use flstore_fl::ids::{ClientId, Round};
use flstore_fl::update::ModelUpdate;

use crate::algorithms::ewma;
use crate::outputs::ReputationOutput;

/// EWMA smoothing for reputation.
pub const ALPHA: f64 = 0.4;

/// Computes the reputation trace of `client` from its updates across rounds
/// and the matching aggregates.
///
/// Returns `None` when no update of `client` is present.
pub fn run(
    client: ClientId,
    updates: &[&ModelUpdate],
    aggregates: &[&AggregateModel],
) -> Option<ReputationOutput> {
    let agg_by_round: HashMap<Round, &AggregateModel> =
        aggregates.iter().map(|a| (a.round, *a)).collect();
    let mut history: Vec<(Round, f64)> = updates
        .iter()
        .filter(|u| u.client == client)
        .filter_map(|u| {
            let agg = agg_by_round.get(&u.round)?;
            let alignment = u.weights.cosine_similarity(&agg.weights).max(0.0);
            // Blend direction alignment with reported local quality.
            let contribution = 0.7 * alignment + 0.3 * u.metrics.local_accuracy;
            Some((u.round, contribution))
        })
        .collect();
    history.sort_by_key(|(r, _)| *r);
    let series: Vec<f64> = history.iter().map(|(_, c)| *c).collect();
    let reputation = ewma(&series, ALPHA)?;
    Some(ReputationOutput {
        client,
        history,
        reputation: reputation.clamp(0.0, 1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{sample_rounds_with, TestJob};

    #[test]
    fn honest_clients_outrank_malicious() {
        let TestJob { records, .. } = sample_rounds_with(20, 0.3, 12, 12);
        let updates: Vec<&ModelUpdate> = records.iter().flat_map(|r| r.updates.iter()).collect();
        let aggregates: Vec<&AggregateModel> = records.iter().map(|r| &r.aggregate).collect();

        let mut honest = Vec::new();
        let mut malicious = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for u in &updates {
            if !seen.insert(u.client) {
                continue;
            }
            if let Some(out) = run(u.client, &updates, &aggregates) {
                if u.ground_truth_malicious {
                    malicious.push(out.reputation);
                } else {
                    honest.push(out.reputation);
                }
            }
        }
        assert!(!honest.is_empty() && !malicious.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&honest) > mean(&malicious) + 0.2,
            "honest {} vs malicious {}",
            mean(&honest),
            mean(&malicious)
        );
    }

    #[test]
    fn history_is_round_ordered() {
        let TestJob { records, .. } = sample_rounds_with(15, 0.0, 10, 5);
        let updates: Vec<&ModelUpdate> = records.iter().flat_map(|r| r.updates.iter()).collect();
        let aggregates: Vec<&AggregateModel> = records.iter().map(|r| &r.aggregate).collect();
        let client = updates[0].client;
        let out = run(client, &updates, &aggregates).expect("participated");
        for pair in out.history.windows(2) {
            assert!(pair[0].0 < pair[1].0);
        }
        assert!((0.0..=1.0).contains(&out.reputation));
    }

    #[test]
    fn absent_client_is_none() {
        let TestJob { records, .. } = sample_rounds_with(3, 0.0, 10, 5);
        let updates: Vec<&ModelUpdate> = records.iter().flat_map(|r| r.updates.iter()).collect();
        let aggregates: Vec<&AggregateModel> = records.iter().map(|r| &r.aggregate).collect();
        assert!(run(ClientId::new(9_999), &updates, &aggregates).is_none());
    }
}
