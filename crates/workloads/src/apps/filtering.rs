//! Malicious-client filtering (P2).
//!
//! Norm- and direction-based outlier detection over one round's updates
//! (Han et al. 2022b class of defenses): poisoned updates in the synthetic
//! job have inflated norms and directions uncorrelated with the honest
//! consensus, the signature this filter scores.

use flstore_fl::update::ModelUpdate;
use flstore_fl::weights::WeightVector;

use crate::algorithms::robust_z_scores;
use crate::outputs::FilteringOutput;

/// Robust z-score threshold above which a client is flagged.
pub const FLAG_THRESHOLD: f64 = 3.0;

/// Scores one round's updates and flags outliers.
///
/// Anomaly score = robust-z(update norm) − robust-z(cosine to the mean
/// update); a large positive value means "big and misaligned".
///
/// Returns `None` when `updates` is empty.
pub fn run(updates: &[&ModelUpdate]) -> Option<FilteringOutput> {
    if updates.is_empty() {
        return None;
    }
    let vectors: Vec<&WeightVector> = updates.iter().map(|u| &u.weights).collect();
    let mean = WeightVector::mean(&vectors)?;
    let norms: Vec<f64> = vectors.iter().map(|w| w.l2_norm()).collect();
    let cosines: Vec<f64> = vectors.iter().map(|w| w.cosine_similarity(&mean)).collect();
    let z_norm = robust_z_scores(&norms);
    let z_cos = robust_z_scores(&cosines);
    let scores: Vec<(_, f64)> = updates
        .iter()
        .enumerate()
        .map(|(i, u)| (u.client, z_norm[i] - z_cos[i]))
        .collect();
    let flagged = scores
        .iter()
        .filter(|(_, s)| *s > FLAG_THRESHOLD)
        .map(|(c, _)| *c)
        .collect();
    Some(FilteringOutput { flagged, scores })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::sample_rounds;

    #[test]
    fn detects_malicious_clients() {
        let rounds = sample_rounds(10, 0.2);
        let mut true_pos = 0usize;
        let mut false_neg = 0usize;
        let mut false_pos = 0usize;
        for r in &rounds {
            let updates: Vec<&ModelUpdate> = r.updates.iter().collect();
            let out = run(&updates).expect("non-empty");
            for u in &r.updates {
                let flagged = out.flagged.contains(&u.client);
                match (u.ground_truth_malicious, flagged) {
                    (true, true) => true_pos += 1,
                    (true, false) => false_neg += 1,
                    (false, true) => false_pos += 1,
                    (false, false) => {}
                }
            }
        }
        let detected = true_pos + false_neg;
        assert!(detected > 0, "no malicious participants sampled");
        let recall = true_pos as f64 / detected as f64;
        assert!(
            recall > 0.7,
            "recall {recall} (tp {true_pos}, fn {false_neg})"
        );
        assert!(
            false_pos <= detected,
            "too many false positives: {false_pos}"
        );
    }

    #[test]
    fn clean_rounds_flag_nothing_systematically() {
        let rounds = sample_rounds(10, 0.0);
        let mut flagged = 0usize;
        let mut total = 0usize;
        for r in &rounds {
            let updates: Vec<&ModelUpdate> = r.updates.iter().collect();
            let out = run(&updates).expect("non-empty");
            flagged += out.flagged.len();
            total += r.updates.len();
        }
        assert!(
            (flagged as f64) < 0.1 * total as f64,
            "{flagged}/{total} clean updates flagged"
        );
    }

    #[test]
    fn empty_input_returns_none() {
        assert!(run(&[]).is_none());
    }
}
