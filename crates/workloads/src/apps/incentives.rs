//! Incentive distribution (P2).
//!
//! Shapley-flavoured contribution accounting (Sun et al. 2023): each
//! participant's payout for a round is its share of a fixed budget,
//! proportional to how well its update aligns with the *self-excluded
//! consensus* (the mean of everyone else's updates). Excluding the client's
//! own update keeps the reference robust: a poisoned update cannot inflate
//! the consensus it is scored against.

use flstore_fl::aggregate::AggregateModel;
use flstore_fl::update::ModelUpdate;
use flstore_fl::weights::WeightVector;

use crate::outputs::IncentivesOutput;

/// Credit budget distributed per round.
pub const ROUND_BUDGET: f64 = 10.0;

/// Distributes the round budget over participants by marginal contribution.
///
/// Returns `None` when `updates` is empty.
pub fn run(updates: &[&ModelUpdate], aggregate: &AggregateModel) -> Option<IncentivesOutput> {
    if updates.is_empty() {
        return None;
    }
    // contribution_i = cos(update_i, mean of everyone else's updates),
    // floored at a small epsilon so payouts stay non-negative and every
    // participant receives something for showing up. The aggregate is used
    // only as the fallback reference when a client is alone in the round.
    let vectors: Vec<&WeightVector> = updates.iter().map(|u| &u.weights).collect();
    let mut raw: Vec<f64> = Vec::with_capacity(updates.len());
    for skip in 0..updates.len() {
        let rest: Vec<&WeightVector> = vectors
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, v)| *v)
            .collect();
        let alignment = match WeightVector::mean(&rest) {
            Some(consensus) => vectors[skip].cosine_similarity(&consensus),
            // Single participant owns the round: score against the aggregate.
            None => vectors[skip].cosine_similarity(&aggregate.weights),
        };
        raw.push(alignment.max(0.0) + 1e-3);
    }
    let total: f64 = raw.iter().sum();
    let payouts = updates
        .iter()
        .zip(&raw)
        .map(|(u, r)| (u.client, ROUND_BUDGET * r / total))
        .collect();
    Some(IncentivesOutput {
        payouts,
        budget: ROUND_BUDGET,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{sample_rounds, sample_rounds_with, TestJob};

    #[test]
    fn budget_is_fully_distributed() {
        let rounds = sample_rounds(5, 0.0);
        let last = rounds.last().expect("rounds");
        let updates: Vec<&ModelUpdate> = last.updates.iter().collect();
        let out = run(&updates, &last.aggregate).expect("non-empty");
        let total: f64 = out.payouts.iter().map(|(_, p)| *p).sum();
        assert!((total - ROUND_BUDGET).abs() < 1e-9, "distributed {total}");
        assert!(out.payouts.iter().all(|(_, p)| *p >= 0.0));
    }

    #[test]
    fn malicious_clients_earn_less_than_honest_average() {
        let TestJob { records, .. } = sample_rounds_with(12, 0.3, 12, 12);
        let mut honest = Vec::new();
        let mut malicious = Vec::new();
        for r in &records {
            let updates: Vec<&ModelUpdate> = r.updates.iter().collect();
            if updates.len() < 4 {
                continue;
            }
            let Some(out) = run(&updates, &r.aggregate) else {
                continue;
            };
            for (client, pay) in &out.payouts {
                let is_mal = r
                    .updates
                    .iter()
                    .find(|u| u.client == *client)
                    .map(|u| u.ground_truth_malicious)
                    .unwrap_or(false);
                if is_mal {
                    malicious.push(*pay);
                } else {
                    honest.push(*pay);
                }
            }
        }
        if honest.is_empty() || malicious.is_empty() {
            return;
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        // Poisoned updates are uncorrelated with the honest consensus, so
        // their alignment share is smaller.
        assert!(
            mean(&honest) > mean(&malicious),
            "honest {} vs malicious {}",
            mean(&honest),
            mean(&malicious)
        );
    }

    #[test]
    fn single_participant_takes_everything() {
        let rounds = sample_rounds(1, 0.0);
        let first = &rounds[0];
        let updates = [&first.updates[0]];
        let out = run(&updates, &first.aggregate).expect("non-empty");
        assert_eq!(out.payouts.len(), 1);
        assert!((out.payouts[0].1 - ROUND_BUDGET).abs() < 1e-9);
    }

    #[test]
    fn empty_is_none() {
        let rounds = sample_rounds(1, 0.0);
        assert!(run(&[], &rounds[0].aggregate).is_none());
    }
}
