//! Cosine-similarity analysis (P2).
//!
//! Computes each client update's cosine similarity to the round aggregate —
//! the primitive behind similarity-based clustering and divergence
//! monitoring (Liu et al. 2023a, paper Table 1).

use flstore_fl::aggregate::AggregateModel;
use flstore_fl::update::ModelUpdate;

use crate::outputs::CosineOutput;

/// Runs the analysis over one round's updates.
///
/// Returns `None` when `updates` is empty.
pub fn run(updates: &[&ModelUpdate], aggregate: &AggregateModel) -> Option<CosineOutput> {
    if updates.is_empty() {
        return None;
    }
    let per_client: Vec<_> = updates
        .iter()
        .map(|u| (u.client, u.weights.cosine_similarity(&aggregate.weights)))
        .collect();
    let mean = per_client.iter().map(|(_, s)| *s).sum::<f64>() / per_client.len() as f64;
    let min = per_client
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::INFINITY, f64::min);
    Some(CosineOutput {
        per_client,
        mean,
        min,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::sample_rounds;

    #[test]
    fn honest_rounds_have_high_mean_similarity() {
        let rounds = sample_rounds(6, 0.0);
        let last = rounds.last().expect("rounds");
        let updates: Vec<&ModelUpdate> = last.updates.iter().collect();
        let out = run(&updates, &last.aggregate).expect("non-empty");
        assert!(out.mean > 0.6, "mean similarity {}", out.mean);
        assert!(out.min <= out.mean);
        assert_eq!(out.per_client.len(), last.updates.len());
    }

    #[test]
    fn malicious_updates_drag_down_min() {
        let rounds = sample_rounds(6, 0.4);
        let mut found = false;
        for r in &rounds {
            if r.updates.iter().any(|u| u.ground_truth_malicious) {
                let updates: Vec<&ModelUpdate> = r.updates.iter().collect();
                let out = run(&updates, &r.aggregate).expect("non-empty");
                assert!(out.min < 0.5, "malicious min {}", out.min);
                found = true;
            }
        }
        assert!(found, "no malicious round sampled");
    }

    #[test]
    fn empty_round_returns_none() {
        let rounds = sample_rounds(1, 0.0);
        assert!(run(&[], &rounds[0].aggregate).is_none());
    }
}
