//! Performance-aware scheduling (P4).
//!
//! Oort-style guided participant selection (Lai et al. 2021b): rank the
//! whole pool by a utility that combines statistical value (recent loss —
//! clients whose data the model has not fit yet are informative) and system
//! speed (device compute + uplink), then pick the top `k` available
//! candidates for the next round.

use std::collections::HashMap;

use flstore_fl::ids::ClientId;
use flstore_fl::metrics::RoundMetrics;

use crate::outputs::SchedPerfOutput;

/// Ranks candidates from a window of round-metrics records (oldest first)
/// and selects `k` participants. A single (latest) record suffices — it
/// carries cumulative per-client state — but longer windows smooth the
/// loss signal.
///
/// Returns `None` when `window` is empty.
pub fn run(window: &[&RoundMetrics], k: usize) -> Option<SchedPerfOutput> {
    let latest = window.last()?;

    // Average each client's recent loss across the window for stability.
    let mut loss_sum: HashMap<ClientId, (f64, u32)> = HashMap::new();
    for metrics in window {
        for c in &metrics.clients {
            let e = loss_sum.entry(c.client).or_insert((0.0, 0));
            e.0 += c.last_loss;
            e.1 += 1;
        }
    }

    let mut utilities: Vec<(ClientId, f64)> = latest
        .clients
        .iter()
        .map(|c| {
            let (sum, n) = loss_sum.get(&c.client).copied().unwrap_or((c.last_loss, 1));
            let avg_loss = sum / n.max(1) as f64;
            // System term: fast compute and fat uplink shrink round time.
            let sys = 1.0 / (1.0 / c.compute_speed.max(0.05) + 8.0 / c.uplink_mbps.max(0.1));
            let util = avg_loss * sys * c.reliability;
            (c.client, util)
        })
        .collect();
    utilities.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("utilities are finite"));

    let selected = utilities
        .iter()
        .filter(|(c, _)| {
            latest
                .client(*c)
                .map(|info| info.available)
                .unwrap_or(false)
        })
        .take(k)
        .map(|(c, _)| *c)
        .collect();
    Some(SchedPerfOutput {
        utilities,
        selected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::sample_rounds;

    #[test]
    fn selects_k_available_clients() {
        let rounds = sample_rounds(10, 0.0);
        let window: Vec<&RoundMetrics> = rounds
            .iter()
            .rev()
            .take(5)
            .rev()
            .map(|r| &r.metrics)
            .collect();
        let out = run(&window, 5).expect("non-empty");
        assert!(out.selected.len() <= 5);
        let latest = window.last().expect("window");
        for c in &out.selected {
            assert!(latest.client(*c).expect("in pool").available);
        }
    }

    #[test]
    fn utilities_rank_fast_lossy_clients_higher() {
        let rounds = sample_rounds(8, 0.0);
        let window: Vec<&RoundMetrics> = rounds.iter().map(|r| &r.metrics).collect();
        let out = run(&window, 3).expect("non-empty");
        // Ranking must be non-increasing.
        for pair in out.utilities.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
        assert_eq!(out.utilities.len(), window.last().expect("w").clients.len());
    }

    #[test]
    fn empty_window_is_none() {
        assert!(run(&[], 5).is_none());
    }
}
