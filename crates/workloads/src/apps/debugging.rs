//! Debugging / fault localization (P3).
//!
//! FedDebug-style rewind (Gill et al. 2023): replay a client's updates
//! across past rounds and measure how anomalously each moved the aggregate.
//! Influence combines misalignment (1 − cosine to the aggregate) with the
//! norm ratio — a faulty or poisoned client shows persistently high
//! influence, a healthy one does not.

use std::collections::HashMap;

use flstore_fl::aggregate::AggregateModel;
use flstore_fl::ids::{ClientId, Round};
use flstore_fl::update::ModelUpdate;

use crate::algorithms::median;
use crate::outputs::DebuggingOutput;

/// Median influence above which a client is diagnosed faulty.
pub const FAULT_THRESHOLD: f64 = 0.8;

/// Traces `client` across the supplied rounds.
///
/// Returns `None` when the client never appears in `updates`.
pub fn run(
    client: ClientId,
    updates: &[&ModelUpdate],
    aggregates: &[&AggregateModel],
) -> Option<DebuggingOutput> {
    let agg_by_round: HashMap<Round, &AggregateModel> =
        aggregates.iter().map(|a| (a.round, *a)).collect();
    let mut per_round: Vec<(Round, f64)> = updates
        .iter()
        .filter(|u| u.client == client)
        .filter_map(|u| {
            let agg = agg_by_round.get(&u.round)?;
            let misalignment = 1.0 - u.weights.cosine_similarity(&agg.weights);
            let agg_norm = agg.weights.l2_norm().max(1e-9);
            let norm_ratio = u.weights.l2_norm() / agg_norm;
            Some((u.round, misalignment * norm_ratio))
        })
        .collect();
    if per_round.is_empty() {
        return None;
    }
    per_round.sort_by_key(|(r, _)| *r);
    let influences: Vec<f64> = per_round.iter().map(|(_, i)| *i).collect();
    let faulty = median(&influences).expect("non-empty") > FAULT_THRESHOLD;
    Some(DebuggingOutput {
        client,
        per_round,
        faulty,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{sample_rounds_with, TestJob};

    fn trace_all(records: &[flstore_fl::job::RoundRecord]) -> Vec<(bool, DebuggingOutput)> {
        let updates: Vec<&ModelUpdate> = records.iter().flat_map(|r| r.updates.iter()).collect();
        let aggregates: Vec<&AggregateModel> = records.iter().map(|r| &r.aggregate).collect();
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for u in &updates {
            if seen.insert(u.client) {
                if let Some(trace) = run(u.client, &updates, &aggregates) {
                    out.push((u.ground_truth_malicious, trace));
                }
            }
        }
        out
    }

    #[test]
    fn diagnoses_faulty_clients() {
        let TestJob { records, .. } = sample_rounds_with(20, 0.3, 12, 12);
        let traces = trace_all(&records);
        let mut tp = 0;
        let mut total_bad = 0;
        let mut fp = 0;
        let mut total_good = 0;
        for (is_bad, trace) in &traces {
            if *is_bad {
                total_bad += 1;
                if trace.faulty {
                    tp += 1;
                }
            } else {
                total_good += 1;
                if trace.faulty {
                    fp += 1;
                }
            }
        }
        assert!(total_bad > 0, "no malicious clients sampled");
        assert!(
            tp as f64 / total_bad as f64 > 0.7,
            "recall {tp}/{total_bad}"
        );
        assert!(
            (fp as f64) < 0.2 * total_good as f64,
            "false positives {fp}/{total_good}"
        );
    }

    #[test]
    fn per_round_trace_is_ordered_and_positive() {
        let TestJob { records, .. } = sample_rounds_with(10, 0.0, 10, 5);
        let traces = trace_all(&records);
        assert!(!traces.is_empty());
        for (_, t) in &traces {
            for pair in t.per_round.windows(2) {
                assert!(pair[0].0 < pair[1].0);
            }
            assert!(t.per_round.iter().all(|(_, v)| *v >= 0.0));
        }
    }

    #[test]
    fn unknown_client_is_none() {
        let TestJob { records, .. } = sample_rounds_with(2, 0.0, 10, 5);
        let updates: Vec<&ModelUpdate> = records.iter().flat_map(|r| r.updates.iter()).collect();
        let aggregates: Vec<&AggregateModel> = records.iter().map(|r| &r.aggregate).collect();
        assert!(run(ClientId::new(77_777), &updates, &aggregates).is_none());
    }
}
