//! Client clustering on model updates (P2).
//!
//! Auxo-style grouping of a round's participants by update similarity —
//! k-means over weight vectors.

use flstore_fl::update::ModelUpdate;
use flstore_fl::weights::WeightVector;

use crate::algorithms::kmeans;
use crate::outputs::ClusteringOutput;

/// Default number of clusters, matching the synthetic job's latent groups.
pub const DEFAULT_K: usize = 5;

/// Clusters one round's updates into `k` groups (clamped to the update
/// count). Deterministic under `seed`.
///
/// Returns `None` when `updates` is empty or `k == 0`.
pub fn run(updates: &[&ModelUpdate], k: usize, seed: u64) -> Option<ClusteringOutput> {
    let vectors: Vec<&WeightVector> = updates.iter().map(|u| &u.weights).collect();
    let result = kmeans(&vectors, k, 50, seed)?;
    let assignments = updates
        .iter()
        .zip(&result.assignments)
        .map(|(u, a)| (u.client, *a))
        .collect();
    Some(ClusteringOutput {
        assignments,
        k: result.centroids.len(),
        inertia: result.inertia,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{sample_rounds_with, TestJob};

    #[test]
    fn recovers_latent_cluster_structure() {
        // A big honest round so every latent cluster is populated.
        let TestJob { records, clusters } = sample_rounds_with(8, 0.0, 24, 24);
        let last = records.last().expect("rounds");
        let updates: Vec<&ModelUpdate> = last.updates.iter().collect();
        let out = run(&updates, DEFAULT_K, 7).expect("non-empty");

        // Pairs in the same latent cluster should mostly land together.
        let mut same_agree = 0usize;
        let mut same_total = 0usize;
        for (i, (ci, ai)) in out.assignments.iter().enumerate() {
            for (cj, aj) in out.assignments.iter().skip(i + 1) {
                let li = clusters[ci.as_u32() as usize];
                let lj = clusters[cj.as_u32() as usize];
                if li == lj {
                    same_total += 1;
                    if ai == aj {
                        same_agree += 1;
                    }
                }
            }
        }
        if same_total > 0 {
            let agreement = same_agree as f64 / same_total as f64;
            assert!(agreement > 0.6, "same-cluster agreement {agreement}");
        }
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let TestJob { records, .. } = sample_rounds_with(4, 0.0, 20, 20);
        let last = records.last().expect("rounds");
        let updates: Vec<&ModelUpdate> = last.updates.iter().collect();
        let k2 = run(&updates, 2, 3).expect("ok").inertia;
        let k8 = run(&updates, 8, 3).expect("ok").inertia;
        assert!(k8 <= k2, "k8 {k8} vs k2 {k2}");
    }

    #[test]
    fn empty_or_zero_k_is_none() {
        let records = crate::testutil::sample_rounds(1, 0.0);
        let updates: Vec<&ModelUpdate> = records[0].updates.iter().collect();
        assert!(run(&[], DEFAULT_K, 0).is_none());
        assert!(run(&updates, 0, 0).is_none());
    }
}
