//! Cluster-based scheduling (P2).
//!
//! TiFL-style tiering: clients are grouped by observed round latency
//! (training + upload) and the next round is scheduled from one tier so
//! stragglers do not gate fast devices (Chai et al. 2020).

use flstore_fl::update::ModelUpdate;

use crate::outputs::SchedClusterOutput;

/// Number of latency tiers.
pub const TIERS: usize = 3;

/// Tiers one round's participants by latency and selects the fastest tier
/// for the next round.
///
/// Returns `None` when `updates` is empty.
pub fn run(updates: &[&ModelUpdate]) -> Option<SchedClusterOutput> {
    if updates.is_empty() {
        return None;
    }
    let mut latencies: Vec<(usize, f64)> = updates
        .iter()
        .enumerate()
        .map(|(i, u)| (i, u.metrics.train_time_s + u.metrics.upload_time_s))
        .collect();
    latencies.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("latencies are finite"));

    let n = latencies.len();
    let per_tier = n.div_ceil(TIERS);
    let mut tier_of = vec![0usize; n];
    for (rank, (idx, _)) in latencies.iter().enumerate() {
        tier_of[*idx] = (rank / per_tier).min(TIERS - 1);
    }
    let tiers: Vec<_> = updates
        .iter()
        .enumerate()
        .map(|(i, u)| (u.client, tier_of[i]))
        .collect();
    let selected = tiers
        .iter()
        .filter(|(_, t)| *t == 0)
        .map(|(c, _)| *c)
        .collect();
    Some(SchedClusterOutput {
        tiers,
        selected_tier: 0,
        selected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::sample_rounds;

    #[test]
    fn fastest_clients_land_in_tier_zero() {
        let rounds = sample_rounds(5, 0.0);
        let last = rounds.last().expect("rounds");
        let updates: Vec<&ModelUpdate> = last.updates.iter().collect();
        let out = run(&updates).expect("non-empty");

        let latency = |c| {
            last.updates
                .iter()
                .find(|u| u.client == c)
                .map(|u| u.metrics.train_time_s + u.metrics.upload_time_s)
                .expect("participant")
        };
        let max_selected = out.selected.iter().map(|c| latency(*c)).fold(0.0, f64::max);
        let min_unselected = out
            .tiers
            .iter()
            .filter(|(_, t)| *t > 0)
            .map(|(c, _)| latency(*c))
            .fold(f64::INFINITY, f64::min);
        assert!(
            max_selected <= min_unselected,
            "tier 0 must be the fastest: {max_selected} vs {min_unselected}"
        );
        assert!(!out.selected.is_empty());
    }

    #[test]
    fn all_clients_are_tiered() {
        let rounds = sample_rounds(3, 0.0);
        let last = rounds.last().expect("rounds");
        let updates: Vec<&ModelUpdate> = last.updates.iter().collect();
        let out = run(&updates).expect("non-empty");
        assert_eq!(out.tiers.len(), updates.len());
        assert!(out.tiers.iter().all(|(_, t)| *t < TIERS));
    }

    #[test]
    fn empty_is_none() {
        assert!(run(&[]).is_none());
    }
}
