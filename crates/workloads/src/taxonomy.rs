//! The paper's Table 1: a taxonomy of non-training FL workloads and the
//! caching-policy class each maps to.
//!
//! FLStore's tailored caching policies key off this classification:
//!
//! * **P1** — individual client updates or the final aggregated model
//!   (serving, testing, fine-tuning).
//! * **P2** — *all* client updates of a specific round (filtering,
//!   contribution calculation, per-round clustering/personalization,
//!   cluster-based scheduling, cosine similarity).
//! * **P3** — one client's updates *across* consecutive rounds (debugging,
//!   provenance, reproducibility, reputation over time).
//! * **P4** — configuration and performance metadata for the most recent
//!   `R` rounds (hyperparameter tracking, resource-aware scheduling,
//!   payout monitoring).

use serde::{Deserialize, Serialize};

use flstore_cloud::compute::WorkUnits;

/// The four caching-policy classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PolicyClass {
    /// Individual client updates / the aggregated model.
    P1IndividualOrAggregate,
    /// All client updates of one round.
    P2AllUpdatesInRound,
    /// One client's updates across rounds.
    P3AcrossRounds,
    /// Recent-rounds metadata and hyperparameters.
    P4Metadata,
}

impl PolicyClass {
    /// Short identifier as used in the paper ("P1".."P4").
    pub fn short_name(self) -> &'static str {
        match self {
            PolicyClass::P1IndividualOrAggregate => "P1",
            PolicyClass::P2AllUpdatesInRound => "P2",
            PolicyClass::P3AcrossRounds => "P3",
            PolicyClass::P4Metadata => "P4",
        }
    }
}

/// The ten evaluated non-training workloads (paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Personalized-FL grouping of clients by model behaviour.
    Personalized,
    /// Client clustering on model updates (Auxo-style).
    Clustering,
    /// FedDebug-style rewind/trace debugging of a client across rounds.
    Debugging,
    /// Malicious-client filtering (norm/cosine outlier detection).
    MaliciousFiltering,
    /// Incentive distribution from per-round contributions.
    Incentives,
    /// Cluster-based scheduling (TiFL-style tiers).
    SchedulingCluster,
    /// Reputation calculation for a client over its history.
    ReputationCalc,
    /// Performance-aware scheduling (Oort-style utility).
    SchedulingPerf,
    /// Cosine-similarity analysis of a round's updates.
    CosineSimilarity,
    /// Inference serving from the aggregated model.
    Inference,
}

impl WorkloadKind {
    /// All ten workloads, in the ordering used by the paper's figures.
    pub const ALL: [WorkloadKind; 10] = [
        WorkloadKind::Personalized,
        WorkloadKind::Clustering,
        WorkloadKind::Debugging,
        WorkloadKind::MaliciousFiltering,
        WorkloadKind::Incentives,
        WorkloadKind::SchedulingCluster,
        WorkloadKind::ReputationCalc,
        WorkloadKind::SchedulingPerf,
        WorkloadKind::CosineSimilarity,
        WorkloadKind::Inference,
    ];

    /// The six workloads of the Cache-Agg comparison (Fig. 9).
    pub const CACHE_AGG_SET: [WorkloadKind; 6] = [
        WorkloadKind::CosineSimilarity,
        WorkloadKind::SchedulingCluster,
        WorkloadKind::Inference,
        WorkloadKind::MaliciousFiltering,
        WorkloadKind::SchedulingPerf,
        WorkloadKind::Incentives,
    ];

    /// Display name matching the paper's figure labels.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Personalized => "Personalized",
            WorkloadKind::Clustering => "Clustering",
            WorkloadKind::Debugging => "Debugging",
            WorkloadKind::MaliciousFiltering => "Malicious Filtering",
            WorkloadKind::Incentives => "Incentives",
            WorkloadKind::SchedulingCluster => "Sched. (Cluster)",
            WorkloadKind::ReputationCalc => "Reputation calc.",
            WorkloadKind::SchedulingPerf => "Sched. (Perf.)",
            WorkloadKind::CosineSimilarity => "Cosine similarity",
            WorkloadKind::Inference => "Inference",
        }
    }

    /// The Table-1 policy class this workload maps to.
    pub fn policy_class(self) -> PolicyClass {
        match self {
            WorkloadKind::Inference => PolicyClass::P1IndividualOrAggregate,
            WorkloadKind::Personalized
            | WorkloadKind::Clustering
            | WorkloadKind::MaliciousFiltering
            | WorkloadKind::CosineSimilarity
            | WorkloadKind::SchedulingCluster
            | WorkloadKind::Incentives => PolicyClass::P2AllUpdatesInRound,
            WorkloadKind::Debugging | WorkloadKind::ReputationCalc => PolicyClass::P3AcrossRounds,
            WorkloadKind::SchedulingPerf => PolicyClass::P4Metadata,
        }
    }

    /// Compute demand per input item at reference model scale, calibrated to
    /// the paper's measured per-workload computation times (§2.3 average
    /// ≈ 2.8 s; Fig. 12: clustering ≈ 6.07 s, cosine ≈ 0.031 s, malicious
    /// filtering ≈ 1.05 s, cluster scheduling ≈ 1.04 s for 10-update rounds
    /// of EfficientNetV2-S).
    pub fn ref_seconds_per_item(self) -> f64 {
        match self {
            WorkloadKind::Personalized => 0.40,
            WorkloadKind::Clustering => 0.60,
            WorkloadKind::Debugging => 0.35,
            WorkloadKind::MaliciousFiltering => 0.105,
            WorkloadKind::Incentives => 0.25,
            WorkloadKind::SchedulingCluster => 0.104,
            WorkloadKind::ReputationCalc => 0.15,
            WorkloadKind::SchedulingPerf => 0.05,
            WorkloadKind::CosineSimilarity => 0.0031,
            WorkloadKind::Inference => 1.0, // per batch against the aggregate
        }
    }

    /// Total compute demand for `items` input objects of a model with the
    /// given compute scale (see `ModelArch::compute_scale`).
    pub fn work_units(self, items: usize, model_scale: f64) -> WorkUnits {
        WorkUnits::from_ref_seconds(self.ref_seconds_per_item() * items.max(1) as f64 * model_scale)
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ten_workloads_have_unique_labels() {
        let mut labels: Vec<&str> = WorkloadKind::ALL.iter().map(|w| w.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 10);
    }

    #[test]
    fn taxonomy_covers_every_class() {
        use PolicyClass::*;
        let classes: Vec<PolicyClass> =
            WorkloadKind::ALL.iter().map(|w| w.policy_class()).collect();
        for c in [
            P1IndividualOrAggregate,
            P2AllUpdatesInRound,
            P3AcrossRounds,
            P4Metadata,
        ] {
            assert!(classes.contains(&c), "no workload maps to {c:?}");
        }
    }

    #[test]
    fn table1_mapping_matches_paper() {
        assert_eq!(
            WorkloadKind::Inference.policy_class(),
            PolicyClass::P1IndividualOrAggregate
        );
        assert_eq!(
            WorkloadKind::MaliciousFiltering.policy_class(),
            PolicyClass::P2AllUpdatesInRound
        );
        assert_eq!(
            WorkloadKind::Debugging.policy_class(),
            PolicyClass::P3AcrossRounds
        );
        assert_eq!(
            WorkloadKind::SchedulingPerf.policy_class(),
            PolicyClass::P4Metadata
        );
    }

    #[test]
    fn work_calibration_matches_fig12() {
        // 10 updates of EfficientNetV2-S (scale 1.0).
        let secs = |k: WorkloadKind| k.work_units(10, 1.0).as_ref_seconds();
        assert!((secs(WorkloadKind::Clustering) - 6.0).abs() < 0.2);
        assert!((secs(WorkloadKind::CosineSimilarity) - 0.031).abs() < 0.005);
        assert!((secs(WorkloadKind::MaliciousFiltering) - 1.05).abs() < 0.05);
        assert!((secs(WorkloadKind::SchedulingCluster) - 1.04).abs() < 0.05);
    }

    #[test]
    fn average_compute_demand_is_paper_scale() {
        let mean: f64 = WorkloadKind::ALL
            .iter()
            .map(|k| k.work_units(10, 1.0).as_ref_seconds())
            .sum::<f64>()
            / 10.0;
        // Paper §2.3: average ≈ 2.8 s across workloads.
        assert!((1.5..4.5).contains(&mean), "mean compute {mean}");
    }

    #[test]
    fn zero_items_still_costs_one_item() {
        let w = WorkloadKind::Inference.work_units(0, 1.0);
        assert!(w.as_ref_seconds() > 0.0);
    }

    #[test]
    fn short_names() {
        assert_eq!(PolicyClass::P1IndividualOrAggregate.short_name(), "P1");
        assert_eq!(PolicyClass::P4Metadata.short_name(), "P4");
    }
}
