//! Per-request outcomes and experiment ledgers.
//!
//! These measurement types are shared by every system that serves
//! non-training requests — FLStore, the ObjStore-Agg and Cache-Agg
//! baselines — so comparisons in the benchmark harness are apples to
//! apples.

use serde::{Deserialize, Serialize};

use crate::request::RequestId;
use crate::taxonomy::WorkloadKind;
use flstore_sim::cost::CostBreakdown;
use flstore_sim::latency::LatencyBreakdown;
use flstore_sim::time::SimTime;

/// The measured result of serving one non-training request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// Request identifier.
    pub request: RequestId,
    /// Workload kind served.
    pub kind: WorkloadKind,
    /// Arrival time.
    pub arrived: SimTime,
    /// Completion time.
    pub finished: SimTime,
    /// Latency attribution.
    pub latency: LatencyBreakdown,
    /// Cost attribution (resources consumed by this request).
    pub cost: CostBreakdown,
    /// Needed objects found in the serverless cache.
    pub cache_hits: usize,
    /// Needed objects fetched from the persistent store.
    pub cache_misses: usize,
    /// Whether a failed (reclaimed) replica forced a failover or re-fetch.
    pub recovered_from_fault: bool,
}

impl RequestOutcome {
    /// Hit fraction for this request (1.0 when nothing was needed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            1.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Aggregated ledger over a window of served requests.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServiceLedger {
    /// Every served request, in completion order.
    pub outcomes: Vec<RequestOutcome>,
    /// Costs not attributable to a single request: write-through backups,
    /// keep-alive pings, prefetch transfers, replica repair, storage rent.
    pub background_cost: CostBreakdown,
}

impl ServiceLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        ServiceLedger::default()
    }

    /// Number of served requests.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True when no requests were served.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Total cache hits across requests.
    pub fn hits(&self) -> u64 {
        self.outcomes.iter().map(|o| o.cache_hits as u64).sum()
    }

    /// Total cache misses across requests.
    pub fn misses(&self) -> u64 {
        self.outcomes.iter().map(|o| o.cache_misses as u64).sum()
    }

    /// Overall hit rate in `[0, 1]` (1.0 when no objects were needed).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits();
        let m = self.misses();
        if h + m == 0 {
            1.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Sum of per-request costs.
    pub fn request_cost(&self) -> CostBreakdown {
        self.outcomes.iter().map(|o| o.cost).sum()
    }

    /// Total cost including background spend.
    pub fn total_cost(&self) -> CostBreakdown {
        self.request_cost() + self.background_cost
    }

    /// Per-request latency totals in seconds (for summaries/percentiles).
    pub fn latency_secs(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .map(|o| o.latency.total().as_secs_f64())
            .collect()
    }

    /// Per-request cost totals in dollars.
    pub fn cost_dollars(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .map(|o| o.cost.total().as_dollars())
            .collect()
    }

    /// Outcomes of one workload kind.
    pub fn by_kind(&self, kind: WorkloadKind) -> impl Iterator<Item = &RequestOutcome> {
        self.outcomes.iter().filter(move |o| o.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flstore_sim::cost::Cost;
    use flstore_sim::time::SimDuration;

    fn outcome(
        id: u64,
        kind: WorkloadKind,
        secs: f64,
        dollars: f64,
        hits: usize,
        misses: usize,
    ) -> RequestOutcome {
        RequestOutcome {
            request: RequestId::new(id),
            kind,
            arrived: SimTime::ZERO,
            finished: SimTime::ZERO + SimDuration::from_secs_f64(secs),
            latency: LatencyBreakdown::compute_only(SimDuration::from_secs_f64(secs)),
            cost: CostBreakdown::compute_only(Cost::from_dollars(dollars)),
            cache_hits: hits,
            cache_misses: misses,
            recovered_from_fault: false,
        }
    }

    #[test]
    fn ledger_aggregates() {
        let mut ledger = ServiceLedger::new();
        ledger
            .outcomes
            .push(outcome(1, WorkloadKind::Inference, 1.0, 0.001, 9, 1));
        ledger
            .outcomes
            .push(outcome(2, WorkloadKind::Clustering, 6.0, 0.002, 10, 0));
        ledger.background_cost += CostBreakdown::compute_only(Cost::from_dollars(0.01));
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.hits(), 19);
        assert_eq!(ledger.misses(), 1);
        assert!((ledger.hit_rate() - 0.95).abs() < 1e-12);
        assert!((ledger.request_cost().total().as_dollars() - 0.003).abs() < 1e-12);
        assert!((ledger.total_cost().total().as_dollars() - 0.013).abs() < 1e-12);
        assert_eq!(ledger.by_kind(WorkloadKind::Inference).count(), 1);
        assert_eq!(ledger.latency_secs(), vec![1.0, 6.0]);
    }

    #[test]
    fn empty_ledger_hit_rate_is_one() {
        assert_eq!(ServiceLedger::new().hit_rate(), 1.0);
        let o = outcome(3, WorkloadKind::Inference, 0.0, 0.0, 0, 0);
        assert_eq!(o.hit_rate(), 1.0);
    }
}
