//! # flstore-workloads — the non-training FL workloads
//!
//! The paper's Table 1 taxonomy and the ten evaluated workloads, implemented
//! as real algorithms over the `flstore-fl` metadata stream:
//!
//! | Workload | Class | Kernel |
//! |---|---|---|
//! | Inference | P1 | linear probe over the aggregate |
//! | Personalized | P2 | k-means on direction ⊕ accuracy |
//! | Clustering | P2 | k-means on update weights |
//! | Malicious Filtering | P2 | robust norm/cosine outlier scores |
//! | Cosine similarity | P2 | update-to-aggregate similarity |
//! | Sched. (Cluster) | P2 | TiFL latency tiers |
//! | Incentives | P2 | leave-one-out contribution shares |
//! | Debugging | P3 | FedDebug-style influence rewind |
//! | Reputation calc. | P3 | EWMA contribution history |
//! | Sched. (Perf.) | P4 | Oort utility ranking |
//!
//! * [`taxonomy`] — [`WorkloadKind`], [`PolicyClass`], and compute
//!   calibration.
//! * [`request`] — [`WorkloadRequest`] and the [`JobCatalog`] that
//!   resolves data needs.
//! * [`apps`] — the ten implementations (pure functions).
//! * [`run`] — [`execute`]: storage-agnostic dispatch.
//! * [`outputs`] / [`algorithms`] — typed results and shared kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithms;
pub mod apps;
pub mod outputs;
pub mod request;
pub mod run;
pub mod service;
pub mod taxonomy;

pub use outputs::WorkloadOutput;
pub use request::{JobCatalog, RequestId, WorkloadRequest};
pub use run::{execute, WorkloadError, WorkloadOutcome};
pub use service::{RequestOutcome, ServiceLedger};
pub use taxonomy::{PolicyClass, WorkloadKind};

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures: small deterministic FL jobs with ground truth.

    use flstore_fl::ids::JobId;
    use flstore_fl::job::{FlJobConfig, FlJobSim, RoundRecord};
    use flstore_fl::metadata::{MetaKey, MetaValue};

    /// A sampled job with its latent cluster ground truth.
    pub struct TestJob {
        pub records: Vec<RoundRecord>,
        pub clusters: Vec<usize>,
    }

    /// Runs a small job with custom pool/participation sizes.
    pub fn sample_rounds_with(
        rounds: u32,
        malicious_fraction: f64,
        total_clients: u32,
        clients_per_round: u32,
    ) -> TestJob {
        let cfg = FlJobConfig {
            rounds,
            malicious_fraction,
            total_clients,
            clients_per_round,
            ..FlJobConfig::quick_test(JobId::new(1))
        };
        let sim = FlJobSim::new(cfg);
        let clusters = sim.ground_truth_clusters().to_vec();
        TestJob {
            records: sim.collect(),
            clusters,
        }
    }

    /// Runs a small job with the default 20-client pool, 8 per round.
    pub fn sample_rounds(rounds: u32, malicious_fraction: f64) -> Vec<RoundRecord> {
        sample_rounds_with(rounds, malicious_fraction, 20, 8).records
    }

    /// Resolves a metadata key against generated records (a test-side stand-
    /// in for a storage system).
    pub fn lookup(records: &[RoundRecord], key: &MetaKey) -> Option<MetaValue> {
        let record = records.iter().find(|r| r.round == key.round)?;
        match key.kind {
            flstore_fl::metadata::MetaKind::ClientUpdate => record
                .updates
                .iter()
                .find(|u| Some(u.client) == key.client)
                .map(|u| MetaValue::Update(u.clone())),
            flstore_fl::metadata::MetaKind::Aggregate => {
                Some(MetaValue::Aggregate(record.aggregate.clone()))
            }
            flstore_fl::metadata::MetaKind::HyperParams => {
                Some(MetaValue::Hyper(record.hyperparams.clone()))
            }
            flstore_fl::metadata::MetaKind::RoundMetrics => {
                Some(MetaValue::Metrics(record.metrics.clone()))
            }
        }
    }
}
