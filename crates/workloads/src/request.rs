//! Non-training requests and the catalog that resolves their data needs.
//!
//! A [`WorkloadRequest`] names *what* to compute (workload kind, target
//! round, optionally a client and a history window). The [`JobCatalog`] —
//! the directory any FL aggregator naturally maintains — resolves the
//! request into the concrete [`MetaKey`]s it must read, following Table 1's
//! access patterns.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use flstore_fl::ids::{ClientId, JobId, Round};
use flstore_fl::job::RoundRecord;
use flstore_fl::metadata::MetaKey;
use flstore_fl::zoo::ModelArch;

use crate::taxonomy::{PolicyClass, WorkloadKind};

/// Identifier of one non-training request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RequestId(u64);

impl RequestId {
    /// Creates a request id.
    pub const fn new(id: u64) -> Self {
        RequestId(id)
    }

    /// Raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// Default history window for P3 (across-round) requests.
pub const DEFAULT_P3_WINDOW: u32 = 4;
/// Rounds of metadata a P4 request *reads*: the latest round's records
/// (which carry cumulative per-client state). The paper's tunable `R`
/// (default 10) governs how many rounds the tailored policy *retains*,
/// not how many one request consumes — see `TailoredPolicy::p4_window`
/// in `flstore-core`.
pub const DEFAULT_P4_READ_WINDOW: u32 = 1;

/// One non-training request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WorkloadRequest {
    /// Request identifier.
    pub id: RequestId,
    /// Which workload to run.
    pub kind: WorkloadKind,
    /// Which job's metadata to read.
    pub job: JobId,
    /// Target round.
    pub round: Round,
    /// Target client for P3-class (across-round) workloads.
    pub client: Option<ClientId>,
    /// History window (rounds) for P3/P4-class workloads.
    pub window: u32,
}

impl WorkloadRequest {
    /// Creates a request with the class-appropriate default window.
    ///
    /// # Panics
    ///
    /// Panics if a P3-class workload (debugging, reputation) is requested
    /// without a target client.
    pub fn new(
        id: RequestId,
        kind: WorkloadKind,
        job: JobId,
        round: Round,
        client: Option<ClientId>,
    ) -> Self {
        let window = match kind.policy_class() {
            PolicyClass::P3AcrossRounds => {
                assert!(
                    client.is_some(),
                    "{kind} tracks a client across rounds and needs a target client"
                );
                DEFAULT_P3_WINDOW
            }
            PolicyClass::P4Metadata => DEFAULT_P4_READ_WINDOW,
            _ => 1,
        };
        WorkloadRequest {
            id,
            kind,
            job,
            round,
            client,
            window,
        }
    }

    /// The rounds this request's history window covers (ending at `round`).
    pub fn window_rounds(&self) -> Vec<Round> {
        let end = self.round.as_u32();
        let start = end.saturating_sub(self.window.saturating_sub(1));
        (start..=end).map(Round::new).collect()
    }
}

/// Directory of what metadata exists for one job: which clients completed
/// each round. Executors use it to resolve requests into key sets.
///
/// # Examples
///
/// ```
/// use flstore_workloads::request::JobCatalog;
/// use flstore_fl::job::{FlJobConfig, FlJobSim};
/// use flstore_fl::ids::JobId;
///
/// let cfg = FlJobConfig::quick_test(JobId::new(1));
/// let mut sim = FlJobSim::new(cfg.clone());
/// let mut catalog = JobCatalog::new(cfg.job, cfg.model);
/// let record = sim.next().expect("rounds");
/// catalog.observe_round(&record);
/// assert_eq!(catalog.rounds_seen(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct JobCatalog {
    job: JobId,
    model: ModelArch,
    participants: HashMap<Round, Vec<ClientId>>,
    latest: Option<Round>,
}

impl JobCatalog {
    /// Creates an empty catalog for `job` training `model`.
    pub fn new(job: JobId, model: ModelArch) -> Self {
        JobCatalog {
            job,
            model,
            participants: HashMap::new(),
            latest: None,
        }
    }

    /// The job this catalog indexes.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// The model the job trains.
    pub fn model(&self) -> &ModelArch {
        &self.model
    }

    /// Records a completed round.
    pub fn observe_round(&mut self, record: &RoundRecord) {
        let clients: Vec<ClientId> = record.updates.iter().map(|u| u.client).collect();
        self.participants.insert(record.round, clients);
        self.latest = Some(match self.latest {
            Some(latest) if latest >= record.round => latest,
            _ => record.round,
        });
    }

    /// Number of rounds observed.
    pub fn rounds_seen(&self) -> usize {
        self.participants.len()
    }

    /// The most recent observed round.
    pub fn latest_round(&self) -> Option<Round> {
        self.latest
    }

    /// Clients that completed `round`, if observed.
    pub fn participants(&self, round: Round) -> Option<&[ClientId]> {
        self.participants.get(&round).map(|v| v.as_slice())
    }

    /// Resolves the metadata keys a request must read, per Table 1:
    ///
    /// * P1: the aggregate of the target round;
    /// * P2: every participant update of the target round plus its aggregate;
    /// * P3: the target client's update (when it participated) and the
    ///   aggregate for each round in the window;
    /// * P4: the round-metrics and hyperparameter records for each round in
    ///   the window.
    ///
    /// Rounds not (yet) observed contribute no keys.
    pub fn data_needs(&self, request: &WorkloadRequest) -> Vec<MetaKey> {
        let job = self.job;
        match request.kind.policy_class() {
            PolicyClass::P1IndividualOrAggregate => {
                if self.participants.contains_key(&request.round) {
                    vec![MetaKey::aggregate(job, request.round)]
                } else {
                    Vec::new()
                }
            }
            PolicyClass::P2AllUpdatesInRound => {
                let mut keys = Vec::new();
                if let Some(clients) = self.participants(request.round) {
                    for c in clients {
                        keys.push(MetaKey::update(job, request.round, *c));
                    }
                    keys.push(MetaKey::aggregate(job, request.round));
                }
                keys
            }
            PolicyClass::P3AcrossRounds => {
                let client = request
                    .client
                    .expect("P3 requests are constructed with a client");
                let mut keys = Vec::new();
                for r in request.window_rounds() {
                    if let Some(clients) = self.participants(r) {
                        if clients.contains(&client) {
                            keys.push(MetaKey::update(job, r, client));
                        }
                        keys.push(MetaKey::aggregate(job, r));
                    }
                }
                keys
            }
            PolicyClass::P4Metadata => {
                let mut keys = Vec::new();
                for r in request.window_rounds() {
                    if self.participants.contains_key(&r) {
                        keys.push(MetaKey::metrics(job, r));
                        keys.push(MetaKey::hyperparams(job, r));
                    }
                }
                keys
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flstore_fl::job::{FlJobConfig, FlJobSim};
    use flstore_fl::metadata::MetaKind;

    fn catalog_with_rounds(n: usize) -> (JobCatalog, Vec<RoundRecord>) {
        let cfg = FlJobConfig::quick_test(JobId::new(1));
        let mut catalog = JobCatalog::new(cfg.job, cfg.model);
        let records: Vec<RoundRecord> = FlJobSim::new(cfg).take(n).collect();
        for r in &records {
            catalog.observe_round(r);
        }
        (catalog, records)
    }

    #[test]
    fn p1_needs_only_aggregate() {
        let (catalog, records) = catalog_with_rounds(3);
        let req = WorkloadRequest::new(
            RequestId::new(1),
            WorkloadKind::Inference,
            catalog.job(),
            records[2].round,
            None,
        );
        let needs = catalog.data_needs(&req);
        assert_eq!(needs.len(), 1);
        assert_eq!(needs[0].kind, MetaKind::Aggregate);
    }

    #[test]
    fn p2_needs_all_round_updates() {
        let (catalog, records) = catalog_with_rounds(3);
        let round = records[1].round;
        let req = WorkloadRequest::new(
            RequestId::new(2),
            WorkloadKind::MaliciousFiltering,
            catalog.job(),
            round,
            None,
        );
        let needs = catalog.data_needs(&req);
        assert_eq!(needs.len(), records[1].updates.len() + 1);
        let updates = needs
            .iter()
            .filter(|k| k.kind == MetaKind::ClientUpdate)
            .count();
        assert_eq!(updates, records[1].updates.len());
    }

    #[test]
    fn p3_tracks_one_client_across_window() {
        let (catalog, records) = catalog_with_rounds(8);
        let client = records[7].updates[0].client;
        let req = WorkloadRequest::new(
            RequestId::new(3),
            WorkloadKind::ReputationCalc,
            catalog.job(),
            records[7].round,
            Some(client),
        );
        assert_eq!(req.window, DEFAULT_P3_WINDOW);
        let needs = catalog.data_needs(&req);
        // One aggregate per window round, plus updates only where the client
        // participated.
        let aggs = needs
            .iter()
            .filter(|k| k.kind == MetaKind::Aggregate)
            .count();
        assert_eq!(aggs, DEFAULT_P3_WINDOW as usize);
        for k in &needs {
            if k.kind == MetaKind::ClientUpdate {
                assert_eq!(k.client, Some(client));
            }
        }
    }

    #[test]
    fn p4_needs_recent_metadata() {
        let (catalog, records) = catalog_with_rounds(12);
        let req = WorkloadRequest::new(
            RequestId::new(4),
            WorkloadKind::SchedulingPerf,
            catalog.job(),
            records[11].round,
            None,
        );
        assert_eq!(req.window, DEFAULT_P4_READ_WINDOW);
        let needs = catalog.data_needs(&req);
        assert_eq!(needs.len(), 2 * DEFAULT_P4_READ_WINDOW as usize);
        assert!(needs
            .iter()
            .all(|k| matches!(k.kind, MetaKind::RoundMetrics | MetaKind::HyperParams)));
    }

    #[test]
    fn unobserved_round_yields_no_keys() {
        let (catalog, _) = catalog_with_rounds(2);
        let req = WorkloadRequest::new(
            RequestId::new(5),
            WorkloadKind::Clustering,
            catalog.job(),
            Round::new(99),
            None,
        );
        assert!(catalog.data_needs(&req).is_empty());
    }

    #[test]
    fn window_rounds_clamped_at_zero() {
        let req = WorkloadRequest {
            id: RequestId::new(6),
            kind: WorkloadKind::Debugging,
            job: JobId::new(0),
            round: Round::new(1),
            client: Some(ClientId::new(0)),
            window: 4,
        };
        let rounds: Vec<u32> = req.window_rounds().iter().map(|r| r.as_u32()).collect();
        assert_eq!(rounds, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "needs a target client")]
    fn p3_without_client_panics() {
        let _ = WorkloadRequest::new(
            RequestId::new(7),
            WorkloadKind::Debugging,
            JobId::new(0),
            Round::new(5),
            None,
        );
    }

    #[test]
    fn latest_round_tracks_maximum() {
        let (catalog, records) = catalog_with_rounds(5);
        assert_eq!(catalog.latest_round(), Some(records[4].round));
        assert_eq!(catalog.rounds_seen(), 5);
    }
}
