//! Shared numerical kernels: k-means, robust outlier scoring, EWMA.
//!
//! These are the actual algorithms the workloads run over reduced-fidelity
//! weight vectors — small, dependency-free implementations with tests
//! against known structure.

use flstore_fl::weights::WeightVector;
use flstore_sim::rng::DetRng;

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster index for each input vector.
    pub assignments: Vec<usize>,
    /// Final centroids.
    pub centroids: Vec<WeightVector>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

/// Lloyd's k-means with k-means++-style seeding, deterministic under `seed`.
///
/// Returns `None` when `vectors` is empty or `k == 0`; if `k` exceeds the
/// number of vectors it is clamped.
///
/// # Panics
///
/// Panics if input vectors disagree in dimensionality.
pub fn kmeans(
    vectors: &[&WeightVector],
    k: usize,
    max_iters: usize,
    seed: u64,
) -> Option<KMeansResult> {
    if vectors.is_empty() || k == 0 {
        return None;
    }
    let k = k.min(vectors.len());
    let mut rng = DetRng::stream(seed, "kmeans");

    // k-means++ seeding: first centroid uniform, then proportional to
    // squared distance from the nearest chosen centroid.
    let mut centroids: Vec<WeightVector> = Vec::with_capacity(k);
    centroids.push(vectors[rng.index(vectors.len())].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = vectors
            .iter()
            .map(|v| {
                centroids
                    .iter()
                    .map(|c| {
                        let d = v.l2_distance(c);
                        d * d
                    })
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        let next = if total <= f64::EPSILON {
            rng.index(vectors.len())
        } else {
            rng.weighted_index(&d2)
        };
        centroids.push(vectors[next].clone());
    }

    let mut assignments = vec![0usize; vectors.len()];
    let mut iterations = 0;
    for iter in 0..max_iters.max(1) {
        iterations = iter + 1;
        // Assignment step.
        let mut changed = false;
        for (i, v) in vectors.iter().enumerate() {
            let (best, _) = centroids
                .iter()
                .enumerate()
                .map(|(j, c)| (j, v.l2_distance(c)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"))
                .expect("k >= 1");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update step.
        for (j, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<&WeightVector> = vectors
                .iter()
                .zip(&assignments)
                .filter(|(_, a)| **a == j)
                .map(|(v, _)| *v)
                .collect();
            if let Some(mean) = WeightVector::mean(&members) {
                *centroid = mean;
            }
        }
        if !changed && iter > 0 {
            break;
        }
    }

    let inertia = vectors
        .iter()
        .zip(&assignments)
        .map(|(v, a)| {
            let d = v.l2_distance(&centroids[*a]);
            d * d
        })
        .sum();

    Some(KMeansResult {
        assignments,
        centroids,
        inertia,
        iterations,
    })
}

/// Median of a sample (interpolated for even lengths). `None` when empty.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not be NaN"));
    let n = sorted.len();
    Some(if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    })
}

/// Median absolute deviation scaled to be consistent with the standard
/// deviation for Gaussian data (×1.4826). `None` when empty.
pub fn mad(values: &[f64]) -> Option<f64> {
    let m = median(values)?;
    let deviations: Vec<f64> = values.iter().map(|v| (v - m).abs()).collect();
    median(&deviations).map(|d| d * 1.4826)
}

/// Robust z-scores: `(x - median) / mad`. Degenerate (constant) samples map
/// to all-zero scores.
pub fn robust_z_scores(values: &[f64]) -> Vec<f64> {
    let Some(m) = median(values) else {
        return Vec::new();
    };
    let spread = mad(values).unwrap_or(0.0);
    if spread <= f64::EPSILON {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| (v - m) / spread).collect()
}

/// Exponentially weighted moving average over a history (oldest first).
/// `None` when empty.
///
/// # Panics
///
/// Panics unless `alpha` is in `(0, 1]`.
pub fn ewma(history: &[f64], alpha: f64) -> Option<f64> {
    assert!(
        alpha > 0.0 && alpha <= 1.0,
        "EWMA alpha must be in (0,1], got {alpha}"
    );
    let mut iter = history.iter();
    let mut acc = *iter.next()?;
    for x in iter {
        acc = alpha * x + (1.0 - alpha) * acc;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_blobs(
        k: usize,
        per: usize,
        dim: usize,
        spread: f64,
        seed: u64,
    ) -> (Vec<WeightVector>, Vec<usize>) {
        let mut rng = DetRng::new(seed);
        let centers: Vec<WeightVector> = (0..k)
            .map(|_| WeightVector::gaussian(&mut rng, dim, 5.0))
            .collect();
        let mut data = Vec::new();
        let mut truth = Vec::new();
        for (j, c) in centers.iter().enumerate() {
            for _ in 0..per {
                let noise = WeightVector::gaussian(&mut rng, dim, spread);
                data.push(c.add(&noise));
                truth.push(j);
            }
        }
        (data, truth)
    }

    #[test]
    fn kmeans_recovers_separated_blobs() {
        let (data, truth) = make_blobs(3, 20, 16, 0.3, 1);
        let refs: Vec<&WeightVector> = data.iter().collect();
        let result = kmeans(&refs, 3, 50, 9).expect("non-empty");
        // Same-truth pairs should share clusters; cross-truth pairs should not.
        let mut agree = 0;
        let mut total = 0;
        for i in 0..truth.len() {
            for j in (i + 1)..truth.len() {
                total += 1;
                let same_truth = truth[i] == truth[j];
                let same_cluster = result.assignments[i] == result.assignments[j];
                if same_truth == same_cluster {
                    agree += 1;
                }
            }
        }
        let rand_index = agree as f64 / total as f64;
        assert!(rand_index > 0.95, "rand index {rand_index}");
    }

    #[test]
    fn kmeans_handles_k_larger_than_n() {
        let (data, _) = make_blobs(1, 3, 8, 0.1, 2);
        let refs: Vec<&WeightVector> = data.iter().collect();
        let result = kmeans(&refs, 10, 20, 3).expect("non-empty");
        assert_eq!(result.centroids.len(), 3);
    }

    #[test]
    fn kmeans_empty_and_zero_k() {
        assert!(kmeans(&[], 3, 10, 0).is_none());
        let v = WeightVector::zeros(4);
        assert!(kmeans(&[&v], 0, 10, 0).is_none());
    }

    #[test]
    fn kmeans_is_deterministic() {
        let (data, _) = make_blobs(4, 10, 8, 0.5, 4);
        let refs: Vec<&WeightVector> = data.iter().collect();
        let a = kmeans(&refs, 4, 30, 7).expect("ok");
        let b = kmeans(&refs, 4, 30, 7).expect("ok");
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn median_and_mad() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
        let spread = mad(&[1.0, 1.0, 1.0, 10.0]).expect("non-empty");
        assert!(spread < 1.0); // robust to the outlier
    }

    #[test]
    fn robust_z_scores_flag_outlier() {
        let values = [1.0, 1.1, 0.9, 1.05, 0.95, 8.0];
        let z = robust_z_scores(&values);
        assert!(z[5] > 5.0, "outlier z {z:?}");
        assert!(z[..5].iter().all(|s| s.abs() < 3.0));
    }

    #[test]
    fn robust_z_scores_degenerate_sample() {
        let z = robust_z_scores(&[2.0, 2.0, 2.0]);
        assert_eq!(z, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn ewma_weights_recent_values() {
        let rising = ewma(&[0.0, 0.0, 1.0], 0.5).expect("non-empty");
        assert!((rising - 0.5).abs() < 1e-12);
        assert_eq!(ewma(&[], 0.5), None);
        assert_eq!(ewma(&[3.0], 0.5), Some(3.0));
    }
}
