//! Typed results of the ten workloads.

use serde::{Deserialize, Serialize};

use flstore_fl::ids::{ClientId, Round};
use flstore_sim::bytes::ByteSize;

/// Cosine-similarity analysis of a round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CosineOutput {
    /// Similarity of each client's update to the round aggregate.
    pub per_client: Vec<(ClientId, f64)>,
    /// Mean similarity.
    pub mean: f64,
    /// Minimum similarity (the most divergent client).
    pub min: f64,
}

/// Malicious-client filtering result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilteringOutput {
    /// Clients flagged as malicious.
    pub flagged: Vec<ClientId>,
    /// Anomaly score per client (higher = more suspicious).
    pub scores: Vec<(ClientId, f64)>,
}

/// Clustering of a round's updates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusteringOutput {
    /// Cluster index per client.
    pub assignments: Vec<(ClientId, usize)>,
    /// Number of clusters used.
    pub k: usize,
    /// Sum of squared distances to centroids.
    pub inertia: f64,
}

/// Personalization grouping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersonalizationOutput {
    /// Personalization group per client.
    pub groups: Vec<(ClientId, usize)>,
    /// Mean local accuracy per group.
    pub group_accuracy: Vec<f64>,
}

/// TiFL-style tier-based scheduling decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedClusterOutput {
    /// Tier index per client (0 = fastest).
    pub tiers: Vec<(ClientId, usize)>,
    /// Tier chosen for the next round.
    pub selected_tier: usize,
    /// Clients scheduled for the next round.
    pub selected: Vec<ClientId>,
}

/// Oort-style utility-based scheduling decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedPerfOutput {
    /// Utility score per candidate client.
    pub utilities: Vec<(ClientId, f64)>,
    /// Top-utility clients selected for the next round.
    pub selected: Vec<ClientId>,
}

/// Reputation trace for one client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReputationOutput {
    /// The tracked client.
    pub client: ClientId,
    /// Per-round contribution history (rounds where it participated).
    pub history: Vec<(Round, f64)>,
    /// EWMA reputation in `[0, 1]`.
    pub reputation: f64,
}

/// Debugging trace for one client (FedDebug-style rewind).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DebuggingOutput {
    /// The traced client.
    pub client: ClientId,
    /// Per-round influence anomaly (higher = more damaging to the
    /// aggregate).
    pub per_round: Vec<(Round, f64)>,
    /// Whether the client is diagnosed as faulty.
    pub faulty: bool,
}

/// Incentive payout for one round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncentivesOutput {
    /// Credit paid to each contributing client.
    pub payouts: Vec<(ClientId, f64)>,
    /// Total budget distributed.
    pub budget: f64,
}

/// Inference serving result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceOutput {
    /// Number of inputs scored.
    pub batch: usize,
    /// Mean model score over the batch.
    pub mean_score: f64,
}

/// Union of all workload results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadOutput {
    /// Cosine-similarity analysis.
    Cosine(CosineOutput),
    /// Malicious-client filtering.
    Filtering(FilteringOutput),
    /// Clustering.
    Clustering(ClusteringOutput),
    /// Personalization grouping.
    Personalization(PersonalizationOutput),
    /// Tier-based scheduling.
    SchedCluster(SchedClusterOutput),
    /// Utility-based scheduling.
    SchedPerf(SchedPerfOutput),
    /// Reputation calculation.
    Reputation(ReputationOutput),
    /// Debugging trace.
    Debugging(DebuggingOutput),
    /// Incentive payouts.
    Incentives(IncentivesOutput),
    /// Inference serving.
    Inference(InferenceOutput),
}

impl WorkloadOutput {
    /// Approximate serialized size of the result returned to the client —
    /// results are summaries, orders of magnitude smaller than the inputs.
    pub fn result_bytes(&self) -> ByteSize {
        let entries = match self {
            WorkloadOutput::Cosine(o) => o.per_client.len(),
            WorkloadOutput::Filtering(o) => o.scores.len(),
            WorkloadOutput::Clustering(o) => o.assignments.len(),
            WorkloadOutput::Personalization(o) => o.groups.len(),
            WorkloadOutput::SchedCluster(o) => o.tiers.len(),
            WorkloadOutput::SchedPerf(o) => o.utilities.len(),
            WorkloadOutput::Reputation(o) => o.history.len(),
            WorkloadOutput::Debugging(o) => o.per_round.len(),
            WorkloadOutput::Incentives(o) => o.payouts.len(),
            WorkloadOutput::Inference(_) => 1,
        };
        ByteSize::from_bytes(256 + 16 * entries as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_bytes_are_small() {
        let out = WorkloadOutput::Cosine(CosineOutput {
            per_client: vec![(ClientId::new(0), 0.9); 10],
            mean: 0.9,
            min: 0.8,
        });
        assert!(out.result_bytes() < ByteSize::from_kb(1));
    }
}
