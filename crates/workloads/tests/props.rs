//! Property-based invariants for the workload kernels.

use proptest::prelude::*;

use flstore_fl::ids::{ClientId, JobId, Round};
use flstore_fl::update::{ModelUpdate, UpdateMetrics};
use flstore_fl::weights::WeightVector;
use flstore_workloads::algorithms::{ewma, kmeans, median, robust_z_scores};
use flstore_workloads::apps;

fn update(client: u32, weights: Vec<f32>, loss: f64, time: f64, samples: u32) -> ModelUpdate {
    ModelUpdate {
        job: JobId::new(0),
        client: ClientId::new(client),
        round: Round::new(0),
        weights: WeightVector::from_vec(weights),
        metrics: UpdateMetrics {
            local_loss: loss,
            local_accuracy: (1.0 - loss / 4.0).clamp(0.0, 1.0),
            train_time_s: time,
            upload_time_s: 1.0,
            num_samples: samples,
            staleness: 0,
        },
        ground_truth_malicious: false,
    }
}

fn round_updates() -> impl Strategy<Value = Vec<ModelUpdate>> {
    prop::collection::vec(
        (
            prop::collection::vec(-10.0f32..10.0, 8),
            0.01f64..4.0,
            1.0f64..100.0,
            100u32..2000,
        ),
        2..12,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (w, loss, time, samples))| update(i as u32, w, loss, time, samples))
            .collect()
    })
}

proptest! {
    #[test]
    fn kmeans_assigns_every_point_to_a_valid_cluster(
        vectors in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 6), 1..40),
        k in 1usize..8,
        seed in 0u64..100,
    ) {
        let owned: Vec<WeightVector> = vectors.into_iter().map(WeightVector::from_vec).collect();
        let refs: Vec<&WeightVector> = owned.iter().collect();
        let result = kmeans(&refs, k, 20, seed).expect("non-empty input");
        prop_assert_eq!(result.assignments.len(), refs.len());
        prop_assert!(result.centroids.len() <= k.min(refs.len()));
        prop_assert!(result.assignments.iter().all(|a| *a < result.centroids.len()));
        prop_assert!(result.inertia >= 0.0 && result.inertia.is_finite());
    }

    #[test]
    fn median_lies_within_range(values in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let m = median(&values).expect("non-empty");
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo && m <= hi);
    }

    #[test]
    fn robust_z_scores_are_shift_invariant(
        values in prop::collection::vec(-1e3f64..1e3, 3..50),
        shift in -1e3f64..1e3,
    ) {
        let shifted: Vec<f64> = values.iter().map(|v| v + shift).collect();
        let a = robust_z_scores(&values);
        let b = robust_z_scores(&shifted);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn ewma_stays_in_input_hull(history in prop::collection::vec(-100.0f64..100.0, 1..40),
                                alpha in 0.01f64..1.0) {
        let e = ewma(&history, alpha).expect("non-empty");
        let lo = history.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = history.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(e >= lo - 1e-9 && e <= hi + 1e-9);
    }

    #[test]
    fn incentives_conserve_the_budget(updates in round_updates()) {
        let refs: Vec<&ModelUpdate> = updates.iter().collect();
        let agg = flstore_fl::aggregate::fedavg(JobId::new(0), Round::new(0), &updates)
            .expect("non-empty");
        let out = apps::incentives::run(&refs, &agg).expect("non-empty");
        let total: f64 = out.payouts.iter().map(|(_, p)| *p).sum();
        prop_assert!((total - out.budget).abs() < 1e-6, "distributed {total}");
        prop_assert!(out.payouts.iter().all(|(_, p)| *p >= 0.0));
        prop_assert_eq!(out.payouts.len(), refs.len());
    }

    #[test]
    fn filtering_scores_every_client_once(updates in round_updates()) {
        let refs: Vec<&ModelUpdate> = updates.iter().collect();
        let out = apps::filtering::run(&refs).expect("non-empty");
        prop_assert_eq!(out.scores.len(), refs.len());
        prop_assert!(out.scores.iter().all(|(_, s)| s.is_finite()));
        // Flagged clients are a subset of scored clients.
        for c in &out.flagged {
            prop_assert!(out.scores.iter().any(|(sc, _)| sc == c));
        }
    }

    #[test]
    fn tier_scheduling_partitions_participants(updates in round_updates()) {
        let refs: Vec<&ModelUpdate> = updates.iter().collect();
        let out = apps::sched_cluster::run(&refs).expect("non-empty");
        prop_assert_eq!(out.tiers.len(), refs.len());
        // Selected clients are exactly tier 0.
        let tier0: Vec<_> = out
            .tiers
            .iter()
            .filter(|(_, t)| *t == 0)
            .map(|(c, _)| *c)
            .collect();
        prop_assert_eq!(&out.selected, &tier0);
        prop_assert!(!out.selected.is_empty());
    }

    #[test]
    fn cosine_output_is_bounded(updates in round_updates()) {
        let refs: Vec<&ModelUpdate> = updates.iter().collect();
        let agg = flstore_fl::aggregate::fedavg(JobId::new(0), Round::new(0), &updates)
            .expect("non-empty");
        let out = apps::cosine::run(&refs, &agg).expect("non-empty");
        prop_assert!((-1.0..=1.0).contains(&out.mean));
        prop_assert!((-1.0..=1.0).contains(&out.min));
        prop_assert!(out.per_client.iter().all(|(_, s)| (-1.0..=1.0).contains(s)));
    }

    #[test]
    fn inference_scores_are_probabilities(updates in round_updates(), batch in 1usize..64, seed in 0u64..100) {
        let agg = flstore_fl::aggregate::fedavg(JobId::new(0), Round::new(0), &updates)
            .expect("non-empty");
        let out = apps::inference::run(&agg, batch, seed).expect("non-empty");
        prop_assert_eq!(out.batch, batch);
        prop_assert!((0.0..=1.0).contains(&out.mean_score));
    }
}
