//! Canned scenario presets matching each paper experiment.
//!
//! The benchmark harness (`flstore-bench`) builds every figure from these,
//! so an experiment's parameters live in exactly one place.

use flstore_baselines::agg::{AggregatorBaseline, AggregatorConfig};
use flstore_core::policy::{
    CachingPolicy, EvictionDiscipline, ReactivePolicy, StaticPolicy, TailoredPolicy,
};
use flstore_core::store::{FlStore, FlStoreConfig};
use flstore_fl::ids::JobId;
use flstore_fl::job::FlJobConfig;
use flstore_fl::zoo::ModelArch;
use flstore_serverless::platform::{PlatformConfig, ReclaimModel};
use flstore_sim::bytes::ByteSize;
use flstore_sim::time::SimTime;

use crate::driver::TraceConfig;

/// Which FLStore policy variant to deploy (Fig. 11 / Table 2 / Fig. 18).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyVariant {
    /// The tailored policy (FLStore proper).
    Tailored,
    /// Tailored with halved cache capacity (FLStore-limited).
    Limited,
    /// LRU eviction, reactive caching.
    Lru,
    /// FIFO eviction, reactive caching.
    Fifo,
    /// LFU eviction, reactive caching.
    Lfu,
    /// Random eviction, reactive caching.
    Random,
    /// Frozen to one class (FLStore-Static; the ablation freezes to P1).
    Static,
}

impl PolicyVariant {
    /// All variants compared in Fig. 11.
    pub const FIG11: [PolicyVariant; 5] = [
        PolicyVariant::Lru,
        PolicyVariant::Fifo,
        PolicyVariant::Random,
        PolicyVariant::Limited,
        PolicyVariant::Tailored,
    ];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyVariant::Tailored => "FLStore",
            PolicyVariant::Limited => "FLStore-limited",
            PolicyVariant::Lru => "FLStore-LRU",
            PolicyVariant::Fifo => "FLStore-FIFO",
            PolicyVariant::Lfu => "FLStore-LFU",
            PolicyVariant::Random => "FLStore-Random",
            PolicyVariant::Static => "FLStore-Static",
        }
    }

    fn policy(self, seed: u64) -> Box<dyn CachingPolicy> {
        match self {
            PolicyVariant::Tailored | PolicyVariant::Limited => Box::new(TailoredPolicy::new()),
            PolicyVariant::Lru => Box::new(ReactivePolicy::new(EvictionDiscipline::Lru, seed)),
            PolicyVariant::Fifo => Box::new(ReactivePolicy::new(EvictionDiscipline::Fifo, seed)),
            PolicyVariant::Lfu => Box::new(ReactivePolicy::new(EvictionDiscipline::Lfu, seed)),
            PolicyVariant::Random => {
                Box::new(ReactivePolicy::new(EvictionDiscipline::Random, seed))
            }
            PolicyVariant::Static => Box::new(StaticPolicy::new(
                flstore_workloads::taxonomy::PolicyClass::P1IndividualOrAggregate,
            )),
        }
    }
}

/// The paper's evaluation job for one model (10/250 clients, 1000 rounds).
/// `rounds` is scaled down for fast experiment variants.
pub fn eval_job(model: ModelArch, rounds: u32) -> FlJobConfig {
    FlJobConfig {
        rounds,
        ..FlJobConfig::paper_eval(JobId::new(1), model)
    }
}

/// A fault-free FLStore deployment (used by latency/cost/policy figures,
/// which do not inject reclamations).
pub fn flstore_for(job: &FlJobConfig, variant: PolicyVariant, seed: u64) -> FlStore {
    let mut cfg = FlStoreConfig {
        seed,
        platform: PlatformConfig {
            reclaim: ReclaimModel::DISABLED,
            ..PlatformConfig::default()
        },
        ..FlStoreConfig::for_model(&job.model)
    };
    if variant == PolicyVariant::Limited {
        // Half the default working set (two rounds of updates + aggregate).
        let round_bytes = job.round_metadata_bytes();
        cfg.capacity_per_ring = Some(ByteSize::from_bytes(round_bytes.as_bytes()));
    }
    FlStore::new(cfg, variant.policy(seed), job.job, job.model)
}

/// An FLStore deployment with `replicas` rings and fault injection — the
/// fault-tolerance experiments (Figs. 13–14).
pub fn flstore_with_faults(
    job: &FlJobConfig,
    replicas: usize,
    reclaim: ReclaimModel,
    seed: u64,
) -> FlStore {
    let cfg = FlStoreConfig {
        seed,
        replication: replicas,
        platform: PlatformConfig {
            reclaim,
            ..PlatformConfig::default()
        },
        ..FlStoreConfig::for_model(&job.model)
    };
    FlStore::new(cfg, Box::new(TailoredPolicy::new()), job.job, job.model)
}

/// The ObjStore-Agg baseline for a job.
pub fn objstore_agg(job: &FlJobConfig) -> AggregatorBaseline {
    AggregatorBaseline::new(
        AggregatorConfig::objstore_agg(),
        job.job,
        job.model,
        SimTime::ZERO,
    )
}

/// The Cache-Agg baseline for a job, cluster sized for the job's metadata
/// working set (the paper provisions the cache for the job's data).
pub fn cache_agg(job: &FlJobConfig) -> AggregatorBaseline {
    let working_set = job.round_metadata_bytes() * u64::from(job.rounds);
    AggregatorBaseline::new(
        AggregatorConfig::cache_agg(working_set),
        job.job,
        job.model,
        SimTime::ZERO,
    )
}

/// The paper's 50-hour, 3000-request trace.
pub fn paper_trace(seed: u64) -> TraceConfig {
    TraceConfig::paper_50h(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{drive, TraceConfig};

    #[test]
    fn variants_have_unique_labels() {
        let mut labels: Vec<&str> = PolicyVariant::FIG11.iter().map(|v| v.label()).collect();
        labels.push(PolicyVariant::Static.label());
        labels.push(PolicyVariant::Lfu.label());
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }

    #[test]
    fn limited_variant_serves_with_partial_cache() {
        let job = FlJobConfig {
            rounds: 10,
            ..FlJobConfig::quick_test(JobId::new(1))
        };
        let mut full = flstore_for(&job, PolicyVariant::Tailored, 1);
        let mut limited = flstore_for(&job, PolicyVariant::Limited, 1);
        let trace = TraceConfig::smoke(2);
        let full_report = drive(&mut full, &job, &trace);
        let limited_report = drive(&mut limited, &job, &trace);
        assert!(limited_report.hit_rate() <= full_report.hit_rate());
    }

    #[test]
    fn scenario_builders_produce_working_systems() {
        let job = FlJobConfig {
            rounds: 8,
            ..FlJobConfig::quick_test(JobId::new(1))
        };
        let trace = TraceConfig::smoke(3);
        for variant in PolicyVariant::FIG11 {
            let mut store = flstore_for(&job, variant, 4);
            let report = drive(&mut store, &job, &trace);
            assert!(
                !report.outcomes.is_empty(),
                "{} served nothing",
                variant.label()
            );
        }
        let mut base = objstore_agg(&job);
        assert!(!drive(&mut base, &job, &trace).outcomes.is_empty());
        let mut cache = cache_agg(&job);
        assert!(!drive(&mut cache, &job, &trace).outcomes.is_empty());
    }
}
