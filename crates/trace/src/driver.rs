//! The experiment driver: replays an FL job and a non-training request
//! trace against any serving system, producing comparable reports.
//!
//! This is the machinery behind every FLStore-vs-baseline figure: the same
//! job, the same requests, the same virtual clock — only the serving
//! architecture changes. Systems plug in through the unified front door
//! ([`flstore_core::api::Service`]); the driver turns arrivals into typed
//! [`Request`] envelopes and submits them through a configurable
//! arrival-window batcher ([`BatchConfig`]) — batch size 1 reproduces
//! strictly sequential serving, envelope for envelope.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use flstore_core::api::{Request, Response, Service};
use flstore_exec::{ShardUnit, ShardedExecutor};
use flstore_fl::ids::{ClientId, Round};
use flstore_fl::job::{FlJobConfig, FlJobSim, RoundRecord};
use flstore_sim::cost::{Cost, CostBreakdown};
use flstore_sim::rng::DetRng;
use flstore_sim::stats::Summary;
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::service::RequestOutcome;
use flstore_workloads::taxonomy::{PolicyClass, WorkloadKind};

/// One externally-supplied trace event: a non-training request arriving
/// `t` seconds into the window.
///
/// The JSON-lines wire format (see [`TraceConfig::from_jsonl`]) is one
/// object per line:
///
/// ```json
/// {"t": 120.5, "workload": "Inference", "round": 3, "client": 7}
/// ```
///
/// `round` and `client` are optional: a missing round targets the latest
/// ingested round (the FL access pattern), and a missing client on a
/// client-tracking (P3) workload falls back to the driver's rotating
/// audit set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Arrival time, in seconds from the window start.
    pub t: f64,
    /// Which workload the request runs.
    pub workload: WorkloadKind,
    /// Explicit target round (defaults to the latest ingested round).
    #[serde(default)]
    pub round: Option<u32>,
    /// Explicit target client (P3-class workloads).
    #[serde(default)]
    pub client: Option<u32>,
}

/// A malformed external trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The reader failed.
    Io(String),
    /// A line was not a valid trace event.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The trace contained no events.
    Empty,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace read failed: {e}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace line {line}: {message}")
            }
            TraceError::Empty => write!(f, "trace contains no events"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Trace parameters: how many requests of which kinds over which window.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Seed for arrivals and target selection.
    pub seed: u64,
    /// Number of requests.
    pub requests: usize,
    /// Window the requests spread over (training runs during the same
    /// window).
    pub window: SimDuration,
    /// Workload mix (requests cycle through these kinds uniformly).
    pub kinds: Vec<WorkloadKind>,
    /// Explicit externally-loaded events. When present they replace the
    /// synthetic arrival process and workload cycling entirely — the
    /// driver replays exactly these requests at exactly these times.
    pub events: Option<Vec<TraceEvent>>,
}

impl TraceConfig {
    /// The paper's main trace: 3000 requests over 50 hours across the ten
    /// workloads (§5.2).
    pub fn paper_50h(seed: u64) -> Self {
        TraceConfig {
            seed,
            requests: 3000,
            window: SimDuration::from_hours(50),
            kinds: WorkloadKind::ALL.to_vec(),
            events: None,
        }
    }

    /// A small trace for tests.
    pub fn smoke(seed: u64) -> Self {
        TraceConfig {
            seed,
            requests: 40,
            window: SimDuration::from_hours(1),
            kinds: WorkloadKind::ALL.to_vec(),
            events: None,
        }
    }

    /// Loads an external trace from JSON-lines: one [`TraceEvent`] object
    /// per line (blank lines and `#` comment lines are skipped). Events
    /// are sorted by arrival time; the window extends one second past the
    /// last arrival, and `kinds` lists the workloads in order of first
    /// appearance.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] when the reader fails, [`TraceError::Parse`]
    /// for an invalid line (bad JSON, unknown workload, non-finite or
    /// negative time), [`TraceError::Empty`] when no events remain.
    pub fn from_jsonl<R: std::io::BufRead>(reader: R) -> Result<Self, TraceError> {
        let mut events: Vec<TraceEvent> = Vec::new();
        for (i, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| TraceError::Io(e.to_string()))?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let event: TraceEvent = serde_json::from_str(line).map_err(|e| TraceError::Parse {
                line: i + 1,
                message: e.to_string(),
            })?;
            if !event.t.is_finite() || event.t < 0.0 {
                return Err(TraceError::Parse {
                    line: i + 1,
                    message: format!("arrival time {} is not a non-negative number", event.t),
                });
            }
            events.push(event);
        }
        if events.is_empty() {
            return Err(TraceError::Empty);
        }
        events.sort_by(|a, b| a.t.partial_cmp(&b.t).expect("times are finite"));
        let mut kinds: Vec<WorkloadKind> = Vec::new();
        for e in &events {
            if !kinds.contains(&e.workload) {
                kinds.push(e.workload);
            }
        }
        let horizon = events.last().expect("non-empty").t;
        Ok(TraceConfig {
            seed: 0,
            requests: events.len(),
            window: SimDuration::from_secs_f64(horizon) + SimDuration::from_secs(1),
            kinds,
            events: Some(events),
        })
    }
}

/// How the driver groups arrivals into [`Service::submit_batch`] calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum envelopes per batch (≥ 1). 1 submits every request the
    /// instant it arrives — strictly sequential serving.
    pub max_batch: usize,
    /// Arrival window: a batch is flushed once the span between its first
    /// and newest member reaches this duration, even if it is not full.
    /// A stale batch straddling a quiet period is served at its window
    /// deadline (`first arrival + window`), not held until the next
    /// arrival, so no request is queued longer than the window.
    pub window: SimDuration,
}

impl BatchConfig {
    /// Strictly sequential serving (batch size 1) — reproduces the
    /// pre-batching driver envelope for envelope.
    pub const SEQUENTIAL: BatchConfig = BatchConfig {
        max_batch: 1,
        window: SimDuration::ZERO,
    };

    /// Batches of up to `max_batch` requests arriving within `window`.
    pub fn new(max_batch: usize, window: SimDuration) -> Self {
        BatchConfig { max_batch, window }
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::SEQUENTIAL
    }
}

/// Report of one drive: per-request outcomes plus window costs.
#[derive(Debug, Clone)]
pub struct DriveReport {
    /// Architecture label.
    pub label: String,
    /// Served request outcomes, in arrival order.
    pub outcomes: Vec<RequestOutcome>,
    /// Requests that could not be served.
    pub errors: usize,
    /// Window-total cost.
    pub total_cost: CostBreakdown,
    /// Always-on infrastructure share of the window.
    pub infra_cost: Cost,
    /// Window length.
    pub window: SimDuration,
}

impl DriveReport {
    /// Per-request latency summary (seconds).
    pub fn latency_summary(&self) -> Option<Summary> {
        let secs: Vec<f64> = self
            .outcomes
            .iter()
            .map(|o| o.latency.total().as_secs_f64())
            .collect();
        Summary::from_values(&secs)
    }

    /// Per-request cost summary (dollars) with the always-on infrastructure
    /// amortized across requests — the paper's per-request costing.
    pub fn amortized_cost_summary(&self) -> Option<Summary> {
        let n = self.outcomes.len().max(1);
        let share = self.infra_cost.as_dollars() / n as f64;
        let dollars: Vec<f64> = self
            .outcomes
            .iter()
            .map(|o| o.cost.total().as_dollars() + share)
            .collect();
        Summary::from_values(&dollars)
    }

    /// Outcomes of one workload kind.
    pub fn by_kind(&self, kind: WorkloadKind) -> Vec<&RequestOutcome> {
        self.outcomes.iter().filter(|o| o.kind == kind).collect()
    }

    /// Overall cache hit rate.
    pub fn hit_rate(&self) -> f64 {
        let hits: u64 = self.outcomes.iter().map(|o| o.cache_hits as u64).sum();
        let misses: u64 = self.outcomes.iter().map(|o| o.cache_misses as u64).sum();
        if hits + misses == 0 {
            1.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }
}

/// Submits every pending serve envelope as one batch. The batch is
/// stamped at `stamp` when given (a window deadline), clamped to no
/// earlier than the newest member's arrival; otherwise at the newest
/// member's arrival (every member has arrived by then either way).
fn flush<S: Service + ?Sized>(
    system: &mut S,
    pending: &mut Vec<(SimTime, Request)>,
    outcomes: &mut Vec<RequestOutcome>,
    errors: &mut usize,
    stamp: Option<SimTime>,
) {
    let Some(&(last_arrival, _)) = pending.last() else {
        return;
    };
    let at = stamp.unwrap_or(last_arrival).max(last_arrival);
    let requests: Vec<Request> = pending.drain(..).map(|(_, r)| r).collect();
    for response in system.submit_batch(at, &requests) {
        match response {
            Response::Served(served) => outcomes.push(served.measured),
            Response::Rejected(_) => *errors += 1,
            // The driver only queues serve envelopes.
            _ => {}
        }
    }
}

/// Drives `system` through one FL job plus a request trace, serving every
/// request the instant it arrives (batch size 1).
///
/// Rounds are ingested at an even cadence across the window; requests
/// arrive Poisson. Each request targets the *latest ingested round* (the FL
/// pattern the paper's policies exploit); P3 requests pick a tracked client
/// from that round's participants, cycling through a small set of clients
/// under audit. An external trace ([`TraceConfig::from_jsonl`]) replaces
/// the synthetic arrivals/targets with its explicit events.
pub fn drive<S: Service>(
    system: &mut S,
    job_cfg: &FlJobConfig,
    trace: &TraceConfig,
) -> DriveReport {
    drive_batched(system, job_cfg, trace, BatchConfig::SEQUENTIAL)
}

/// Like [`drive`], but groups arrivals through the front door's batched
/// submission path: up to `batch.max_batch` requests arriving within
/// `batch.window` are served as one [`Service::submit_batch`] call, so
/// executors amortize fixed per-request work across the batch. Round
/// ingests act as batch barriers — pending requests (which arrived
/// earlier) are always served before the next round lands, preserving the
/// sequential interleaving of ingest and serve traffic.
pub fn drive_batched<S: Service>(
    system: &mut S,
    job_cfg: &FlJobConfig,
    trace: &TraceConfig,
    batch: BatchConfig,
) -> DriveReport {
    assert!(batch.max_batch >= 1, "batches need at least one slot");
    assert!(
        trace.events.is_some() || !trace.kinds.is_empty(),
        "trace needs at least one workload kind"
    );
    let mut sim = FlJobSim::new(job_cfg.clone());
    let mut rng = DetRng::stream(trace.seed, "trace-targets");

    let round_interval = trace.window.div_u64(u64::from(job_cfg.rounds.max(1)));
    let planned: Vec<(SimTime, Option<TraceEvent>)> = match &trace.events {
        Some(events) => events
            .iter()
            .map(|e| {
                (
                    SimTime::ZERO + SimDuration::from_secs_f64(e.t),
                    Some(e.clone()),
                )
            })
            .collect(),
        None => crate::arrival::poisson_arrivals(
            trace.seed,
            SimTime::ZERO,
            trace.window,
            trace.requests,
        )
        .into_iter()
        .map(|at| (at, None))
        .collect(),
    };

    let mut outcomes = Vec::with_capacity(planned.len());
    let mut errors = 0usize;
    let mut next_round_at = SimTime::ZERO;
    let mut latest: Option<Arc<RoundRecord>> = None;
    let mut audited: Vec<ClientId> = Vec::new();
    let mut request_seq = 0u64;
    let mut pending: Vec<(SimTime, Request)> = Vec::new();

    for (at, event) in planned {
        // Everything due before this arrival happens first, in time order.
        // Two kinds of work can be due: a stale batch's window deadline (a
        // timer would have flushed it — serve it there, so no queued
        // request waits longer than `batch.window` past its batch's first
        // arrival, and a late arrival starts a fresh batch instead of
        // joining a stale one) and round ingests at their cadence (which
        // barrier-flush pending requests, stamped at their arrival, before
        // the round lands). Submissions stay clock-monotonic either way.
        loop {
            let deadline = pending
                .first()
                .map(|&(first, _)| first + batch.window)
                .filter(|&d| d <= at);
            let round_due = next_round_at <= at;
            if let Some(d) = deadline {
                if !round_due || d <= next_round_at {
                    flush(system, &mut pending, &mut outcomes, &mut errors, Some(d));
                    continue;
                }
            }
            if !round_due {
                break;
            }
            match sim.next_round() {
                Some(record) => {
                    flush(system, &mut pending, &mut outcomes, &mut errors, None);
                    let record = Arc::new(record);
                    let response = system.submit(
                        next_round_at,
                        Request::Ingest {
                            job: job_cfg.job,
                            record: record.clone(),
                        },
                    );
                    if !response.is_ok() {
                        errors += 1;
                    }
                    latest = Some(record);
                    next_round_at += round_interval;
                }
                None => break,
            }
        }
        let Some(record) = latest.as_ref() else {
            errors += 1;
            continue;
        };
        let kind = match &event {
            Some(e) => e.workload,
            None => trace.kinds[request_seq as usize % trace.kinds.len()],
        };
        request_seq += 1;
        let explicit_client = event.as_ref().and_then(|e| e.client).map(ClientId::new);
        let client = match kind.policy_class() {
            PolicyClass::P3AcrossRounds => explicit_client.or_else(|| {
                // Audits focus on a rotating handful of clients.
                if audited.len() < 4 {
                    let pick = record.updates[rng.index(record.updates.len())].client;
                    if !audited.contains(&pick) {
                        audited.push(pick);
                    }
                }
                Some(audited[request_seq as usize % audited.len()])
            }),
            _ => explicit_client,
        };
        let round = event
            .as_ref()
            .and_then(|e| e.round)
            .map(Round::new)
            .unwrap_or(record.round);
        let request = WorkloadRequest::new(
            RequestId::new(request_seq),
            kind,
            job_cfg.job,
            round,
            client,
        );
        pending.push((at, Request::Serve(request)));
        let span = at.duration_since(pending[0].0);
        if pending.len() >= batch.max_batch || span >= batch.window {
            flush(system, &mut pending, &mut outcomes, &mut errors, None);
        }
    }
    flush(system, &mut pending, &mut outcomes, &mut errors, None);

    let end = SimTime::ZERO + trace.window;
    DriveReport {
        label: system.label(),
        outcomes,
        errors,
        total_cost: system.window_cost(end),
        infra_cost: system.infra_cost(end),
        window: trace.window,
    }
}

/// Materializes the envelope schedule a trace produces, without driving
/// any system: the same planned arrivals, round-ingest cadence, workload
/// targets, and rotating P3 audit set as [`drive_batched`], flattened to
/// `(arrival, envelope)` pairs in submission order.
///
/// This is the replay surface for out-of-process consumers — the
/// `flstore-loadgen` client drivers serialize exactly this schedule over
/// the wire, so a networked run serves the *same trace* the in-process
/// driver serves. Arrival stamps are monotone non-decreasing; every
/// `Ingest` precedes the serves that target its round.
///
/// ```
/// use flstore_fl::ids::JobId;
/// use flstore_fl::job::FlJobConfig;
/// use flstore_trace::driver::{materialize_schedule, TraceConfig};
///
/// let job = FlJobConfig::quick_test(JobId::new(1));
/// let schedule = materialize_schedule(&job, &TraceConfig::smoke(7));
/// assert!(schedule.len() > job.rounds as usize); // ingests + serves
/// let mut prev = flstore_sim::time::SimTime::ZERO;
/// for (at, _) in &schedule {
///     assert!(*at >= prev);
///     prev = *at;
/// }
/// ```
pub fn materialize_schedule(job_cfg: &FlJobConfig, trace: &TraceConfig) -> Vec<(SimTime, Request)> {
    assert!(
        trace.events.is_some() || !trace.kinds.is_empty(),
        "trace needs at least one workload kind"
    );
    let mut sim = FlJobSim::new(job_cfg.clone());
    let mut rng = DetRng::stream(trace.seed, "trace-targets");

    let round_interval = trace.window.div_u64(u64::from(job_cfg.rounds.max(1)));
    let planned: Vec<(SimTime, Option<TraceEvent>)> = match &trace.events {
        Some(events) => events
            .iter()
            .map(|e| {
                (
                    SimTime::ZERO + SimDuration::from_secs_f64(e.t),
                    Some(e.clone()),
                )
            })
            .collect(),
        None => crate::arrival::poisson_arrivals(
            trace.seed,
            SimTime::ZERO,
            trace.window,
            trace.requests,
        )
        .into_iter()
        .map(|at| (at, None))
        .collect(),
    };

    let mut schedule = Vec::with_capacity(planned.len() + job_cfg.rounds as usize);
    let mut next_round_at = SimTime::ZERO;
    let mut latest: Option<Arc<RoundRecord>> = None;
    let mut audited: Vec<ClientId> = Vec::new();
    let mut request_seq = 0u64;

    for (at, event) in planned {
        while next_round_at <= at {
            match sim.next_round() {
                Some(record) => {
                    let record = Arc::new(record);
                    schedule.push((
                        next_round_at,
                        Request::Ingest {
                            job: job_cfg.job,
                            record: record.clone(),
                        },
                    ));
                    latest = Some(record);
                    next_round_at += round_interval;
                }
                None => break,
            }
        }
        let Some(record) = latest.as_ref() else {
            continue;
        };
        let kind = match &event {
            Some(e) => e.workload,
            None => trace.kinds[request_seq as usize % trace.kinds.len()],
        };
        request_seq += 1;
        let explicit_client = event.as_ref().and_then(|e| e.client).map(ClientId::new);
        let client = match kind.policy_class() {
            PolicyClass::P3AcrossRounds => explicit_client.or_else(|| {
                if audited.len() < 4 {
                    let pick = record.updates[rng.index(record.updates.len())].client;
                    if !audited.contains(&pick) {
                        audited.push(pick);
                    }
                }
                Some(audited[request_seq as usize % audited.len()])
            }),
            _ => explicit_client,
        };
        let round = event
            .as_ref()
            .and_then(|e| e.round)
            .map(Round::new)
            .unwrap_or(record.round);
        let request = WorkloadRequest::new(
            RequestId::new(request_seq),
            kind,
            job_cfg.job,
            round,
            client,
        );
        schedule.push((at, Request::Serve(request)));
    }
    schedule
}

/// The parallel drive loop: like [`drive_batched`], but serving through a
/// [`ShardedExecutor`] with `threads` worker shards — each batch the
/// arrival-window batcher forms fans out across the executor's workers
/// and merges back into submission order, while round ingests remain
/// barriers so the virtual clock stays monotonic. With `threads <= 1` the
/// system is driven in-thread, envelope for envelope.
///
/// The executor is bit-for-bit equivalent to sequential submission, so a
/// parallel drive produces the *same report* as a sequential one with the
/// same [`BatchConfig`] — only the wall-clock cost of the drive changes.
/// The serving unit is handed back with the report so callers can inspect
/// post-drive state (fault counters, cache contents).
pub fn drive_parallel<U: ShardUnit + 'static>(
    system: U,
    job_cfg: &FlJobConfig,
    trace: &TraceConfig,
    batch: BatchConfig,
    threads: usize,
) -> (DriveReport, U) {
    if threads <= 1 {
        let mut system = system;
        let report = drive_batched(&mut system, job_cfg, trace, batch);
        return (report, system);
    }
    let mut exec = ShardedExecutor::new(vec![system], threads);
    let report = drive_batched(&mut exec, job_cfg, trace, batch);
    let unit = exec
        .into_units()
        .pop()
        .expect("the executor returns the unit it was given");
    (report, unit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flstore_baselines::agg::{AggregatorBaseline, AggregatorConfig};
    use flstore_core::policy::TailoredPolicy;
    use flstore_core::store::FlStore;
    use flstore_core::store::FlStoreConfig;
    use flstore_fl::ids::JobId;
    use flstore_serverless::platform::{PlatformConfig, ReclaimModel};

    fn small_job() -> FlJobConfig {
        FlJobConfig {
            rounds: 20,
            ..FlJobConfig::quick_test(JobId::new(1))
        }
    }

    fn flstore(job: &FlJobConfig) -> FlStore {
        let cfg = FlStoreConfig {
            platform: PlatformConfig {
                reclaim: ReclaimModel::DISABLED,
                ..PlatformConfig::default()
            },
            ..FlStoreConfig::for_model(&job.model)
        };
        FlStore::new(cfg, Box::new(TailoredPolicy::new()), job.job, job.model)
    }

    #[test]
    fn drives_flstore_through_a_trace() {
        let job = small_job();
        let mut store = flstore(&job);
        let report = drive(&mut store, &job, &TraceConfig::smoke(5));
        assert_eq!(report.label, "FLStore");
        assert!(
            report.outcomes.len() >= 35,
            "served {}",
            report.outcomes.len()
        );
        assert!(report.hit_rate() > 0.8, "hit rate {}", report.hit_rate());
        assert!(report.total_cost.total().as_dollars() > 0.0);
    }

    #[test]
    fn drives_baseline_with_identical_trace() {
        let job = small_job();
        let mut agg = AggregatorBaseline::new(
            AggregatorConfig::objstore_agg(),
            job.job,
            job.model,
            SimTime::ZERO,
        );
        let report = drive(&mut agg, &job, &TraceConfig::smoke(5));
        assert_eq!(report.label, "ObjStore-Agg");
        assert!(report.outcomes.len() >= 35);
        // Baseline never hits a serverless cache.
        assert!(report.hit_rate() < 0.6);
    }

    #[test]
    fn flstore_beats_objstore_agg_on_latency() {
        let job = small_job();
        let trace = TraceConfig::smoke(7);
        let mut store = flstore(&job);
        let fl = drive(&mut store, &job, &trace);
        let mut agg = AggregatorBaseline::new(
            AggregatorConfig::objstore_agg(),
            job.job,
            job.model,
            SimTime::ZERO,
        );
        let base = drive(&mut agg, &job, &trace);
        let fl_mean = fl.latency_summary().expect("served").mean;
        let base_mean = base.latency_summary().expect("served").mean;
        assert!(
            fl_mean < base_mean * 0.6,
            "FLStore {fl_mean:.2}s vs ObjStore-Agg {base_mean:.2}s"
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let job = small_job();
        let trace = TraceConfig::smoke(9);
        let mut a = flstore(&job);
        let mut b = flstore(&job);
        let ra = drive(&mut a, &job, &trace);
        let rb = drive(&mut b, &job, &trace);
        assert_eq!(ra.outcomes.len(), rb.outcomes.len());
        let la: Vec<f64> = ra
            .outcomes
            .iter()
            .map(|o| o.latency.total().as_secs_f64())
            .collect();
        let lb: Vec<f64> = rb
            .outcomes
            .iter()
            .map(|o| o.latency.total().as_secs_f64())
            .collect();
        assert_eq!(la, lb);
    }

    #[test]
    fn batch_size_one_is_the_sequential_driver() {
        let job = small_job();
        let trace = TraceConfig::smoke(11);
        let mut a = flstore(&job);
        let mut b = flstore(&job);
        let ra = drive(&mut a, &job, &trace);
        let rb = drive_batched(
            &mut b,
            &job,
            &trace,
            BatchConfig {
                max_batch: 1,
                window: SimDuration::from_hours(9),
            },
        );
        assert_eq!(ra.outcomes, rb.outcomes);
        assert_eq!(ra.errors, rb.errors);
        assert_eq!(ra.total_cost, rb.total_cost);
    }

    #[test]
    fn batched_drive_serves_the_full_trace() {
        let job = small_job();
        let trace = TraceConfig::smoke(13);
        let mut sequential = flstore(&job);
        let rs = drive(&mut sequential, &job, &trace);
        for max_batch in [4, 16] {
            let mut store = flstore(&job);
            let report = drive_batched(
                &mut store,
                &job,
                &trace,
                BatchConfig::new(max_batch, SimDuration::from_secs(600)),
            );
            assert_eq!(
                report.outcomes.len() + report.errors,
                rs.outcomes.len() + rs.errors,
                "batched drive dropped requests at max_batch={max_batch}"
            );
            // The same requests hit the same cached working set.
            assert!((report.hit_rate() - rs.hit_rate()).abs() < 0.05);
        }
    }

    #[test]
    fn stale_batches_flush_at_their_window_deadline() {
        // One request arrives at t=10, the next at t=3000. With a 60 s
        // window, the first must be served at its deadline (t=70) — not
        // held for ~50 minutes and lumped into the next batch.
        let events = vec![
            TraceEvent {
                t: 10.0,
                workload: WorkloadKind::Inference,
                round: None,
                client: None,
            },
            TraceEvent {
                t: 3000.0,
                workload: WorkloadKind::Inference,
                round: None,
                client: None,
            },
        ];
        let job = small_job();
        let trace = TraceConfig {
            seed: 1,
            requests: events.len(),
            window: SimDuration::from_secs(3100),
            kinds: vec![WorkloadKind::Inference],
            events: Some(events),
        };
        let mut store = flstore(&job);
        let report = drive_batched(
            &mut store,
            &job,
            &trace,
            BatchConfig::new(16, SimDuration::from_secs(60)),
        );
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(report.outcomes[0].arrived, SimTime::from_secs(70));
        assert_eq!(report.outcomes[1].arrived, SimTime::from_secs(3000));

        // Finer round cadence than the window: the round due at t=155
        // precedes the t=210 deadline, so the pending request is
        // barrier-flushed at its own arrival (t=10) before the ingest —
        // the Service clock never runs backwards.
        let events = vec![
            TraceEvent {
                t: 10.0,
                workload: WorkloadKind::Inference,
                round: None,
                client: None,
            },
            TraceEvent {
                t: 3000.0,
                workload: WorkloadKind::Inference,
                round: None,
                client: None,
            },
        ];
        let job = small_job();
        let trace = TraceConfig {
            seed: 1,
            requests: events.len(),
            window: SimDuration::from_secs(3100),
            kinds: vec![WorkloadKind::Inference],
            events: Some(events),
        };
        let mut store = flstore(&job);
        let report = drive_batched(
            &mut store,
            &job,
            &trace,
            BatchConfig::new(16, SimDuration::from_secs(200)),
        );
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(report.outcomes[0].arrived, SimTime::from_secs(10));
    }

    #[test]
    fn parallel_drive_matches_sequential_drive() {
        let job = small_job();
        let trace = TraceConfig::smoke(17);
        for batch in [
            BatchConfig::SEQUENTIAL,
            BatchConfig::new(8, SimDuration::from_secs(300)),
        ] {
            let mut sequential = flstore(&job);
            let rs = drive_batched(&mut sequential, &job, &trace, batch);
            for threads in [2usize, 4] {
                let (rp, store) = drive_parallel(flstore(&job), &job, &trace, batch, threads);
                assert_eq!(rs.outcomes, rp.outcomes, "threads={threads}");
                assert_eq!(rs.errors, rp.errors);
                assert_eq!(rs.total_cost, rp.total_cost);
                assert_eq!(rs.infra_cost, rp.infra_cost);
                assert_eq!(rs.label, rp.label);
                // The unit comes back for post-drive inspection.
                assert_eq!(store.ledger().outcomes, sequential.ledger().outcomes);
            }
        }
    }

    #[test]
    fn jsonl_trace_round_trips_and_drives() {
        let jsonl = "\
# a hand-written external trace
{\"t\": 30.0, \"workload\": \"Inference\"}
{\"t\": 10.0, \"workload\": \"MaliciousFiltering\"}

{\"t\": 45.5, \"workload\": \"Debugging\", \"client\": 2}
{\"t\": 60.0, \"workload\": \"Inference\", \"round\": 0}
";
        let trace = TraceConfig::from_jsonl(jsonl.as_bytes()).expect("parses");
        assert_eq!(trace.requests, 4);
        let events = trace.events.as_ref().expect("loaded");
        // Sorted by arrival.
        assert_eq!(events[0].workload, WorkloadKind::MaliciousFiltering);
        assert_eq!(events[3].round, Some(0));
        assert_eq!(
            trace.kinds,
            vec![
                WorkloadKind::MaliciousFiltering,
                WorkloadKind::Inference,
                WorkloadKind::Debugging,
            ]
        );
        assert!(trace.window > SimDuration::from_secs(60));

        let job = FlJobConfig {
            rounds: 4,
            ..FlJobConfig::quick_test(JobId::new(1))
        };
        let mut store = flstore(&job);
        let report = drive(&mut store, &job, &trace);
        assert_eq!(report.outcomes.len() + report.errors, 4);
        assert!(
            report.outcomes.len() >= 3,
            "served {}",
            report.outcomes.len()
        );
    }

    #[test]
    fn jsonl_trace_rejects_bad_lines() {
        assert!(matches!(
            TraceConfig::from_jsonl("".as_bytes()),
            Err(TraceError::Empty)
        ));
        let bad_kind = "{\"t\": 1.0, \"workload\": \"Nonsense\"}";
        assert!(matches!(
            TraceConfig::from_jsonl(bad_kind.as_bytes()),
            Err(TraceError::Parse { line: 1, .. })
        ));
        let bad_time = "{\"t\": -3.0, \"workload\": \"Inference\"}";
        assert!(matches!(
            TraceConfig::from_jsonl(bad_time.as_bytes()),
            Err(TraceError::Parse { line: 1, .. })
        ));
    }
}
