//! The experiment driver: replays an FL job and a non-training request
//! trace against any serving system, producing comparable reports.
//!
//! This is the machinery behind every FLStore-vs-baseline figure: the same
//! job, the same requests, the same virtual clock — only the serving
//! architecture changes.

use flstore_baselines::agg::AggregatorBaseline;
use flstore_core::store::FlStore;
use flstore_fl::ids::{ClientId, JobId};
use flstore_fl::job::{FlJobConfig, FlJobSim, RoundRecord};
use flstore_sim::cost::{Cost, CostBreakdown};
use flstore_sim::rng::DetRng;
use flstore_sim::stats::Summary;
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::{RequestId, WorkloadRequest};
use flstore_workloads::service::RequestOutcome;
use flstore_workloads::taxonomy::{PolicyClass, WorkloadKind};

/// Anything that can ingest FL rounds and serve non-training requests.
pub trait ServingSystem {
    /// Architecture label for reports.
    fn label(&self) -> String;

    /// Ingests one round's metadata at `now`.
    fn ingest_round(&mut self, now: SimTime, record: &RoundRecord);

    /// Serves a request; `None` when it cannot be served.
    fn serve_request(&mut self, now: SimTime, request: &WorkloadRequest) -> Option<RequestOutcome>;

    /// Total cost over the window ending at `now` (requests + background +
    /// always-on infrastructure + storage).
    fn window_cost(&mut self, now: SimTime) -> CostBreakdown;

    /// Always-on infrastructure cost alone over the window ending at `now`
    /// (used to amortize per-request costs the way the paper does).
    fn infra_cost(&mut self, now: SimTime) -> Cost;
}

impl ServingSystem for FlStore {
    fn label(&self) -> String {
        self.policy_name().to_string()
    }

    fn ingest_round(&mut self, now: SimTime, record: &RoundRecord) {
        FlStore::ingest_round(self, now, record);
    }

    fn serve_request(&mut self, now: SimTime, request: &WorkloadRequest) -> Option<RequestOutcome> {
        FlStore::serve(self, now, request).ok().map(|s| s.measured)
    }

    fn window_cost(&mut self, now: SimTime) -> CostBreakdown {
        self.total_cost(now)
    }

    fn infra_cost(&mut self, now: SimTime) -> Cost {
        // FLStore has no dedicated always-on servers; its standing cost is
        // the keep-alive pings.
        let _ = now;
        self.platform().billing().keepalive_cost
    }
}

impl ServingSystem for AggregatorBaseline {
    fn label(&self) -> String {
        AggregatorBaseline::label(self).to_string()
    }

    fn ingest_round(&mut self, now: SimTime, record: &RoundRecord) {
        AggregatorBaseline::ingest_round(self, now, record);
    }

    fn serve_request(&mut self, now: SimTime, request: &WorkloadRequest) -> Option<RequestOutcome> {
        AggregatorBaseline::serve(self, now, request)
            .ok()
            .map(|(_, m)| m)
    }

    fn window_cost(&mut self, now: SimTime) -> CostBreakdown {
        self.total_cost(now)
    }

    fn infra_cost(&mut self, now: SimTime) -> Cost {
        AggregatorBaseline::infra_cost(self, now)
    }
}

/// Trace parameters: how many requests of which kinds over which window.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Seed for arrivals and target selection.
    pub seed: u64,
    /// Number of requests.
    pub requests: usize,
    /// Window the requests spread over (training runs during the same
    /// window).
    pub window: SimDuration,
    /// Workload mix (requests cycle through these kinds uniformly).
    pub kinds: Vec<WorkloadKind>,
}

impl TraceConfig {
    /// The paper's main trace: 3000 requests over 50 hours across the ten
    /// workloads (§5.2).
    pub fn paper_50h(seed: u64) -> Self {
        TraceConfig {
            seed,
            requests: 3000,
            window: SimDuration::from_hours(50),
            kinds: WorkloadKind::ALL.to_vec(),
        }
    }

    /// A small trace for tests.
    pub fn smoke(seed: u64) -> Self {
        TraceConfig {
            seed,
            requests: 40,
            window: SimDuration::from_hours(1),
            kinds: WorkloadKind::ALL.to_vec(),
        }
    }
}

/// Report of one drive: per-request outcomes plus window costs.
#[derive(Debug, Clone)]
pub struct DriveReport {
    /// Architecture label.
    pub label: String,
    /// Served request outcomes, in arrival order.
    pub outcomes: Vec<RequestOutcome>,
    /// Requests that could not be served.
    pub errors: usize,
    /// Window-total cost.
    pub total_cost: CostBreakdown,
    /// Always-on infrastructure share of the window.
    pub infra_cost: Cost,
    /// Window length.
    pub window: SimDuration,
}

impl DriveReport {
    /// Per-request latency summary (seconds).
    pub fn latency_summary(&self) -> Option<Summary> {
        let secs: Vec<f64> = self
            .outcomes
            .iter()
            .map(|o| o.latency.total().as_secs_f64())
            .collect();
        Summary::from_values(&secs)
    }

    /// Per-request cost summary (dollars) with the always-on infrastructure
    /// amortized across requests — the paper's per-request costing.
    pub fn amortized_cost_summary(&self) -> Option<Summary> {
        let n = self.outcomes.len().max(1);
        let share = self.infra_cost.as_dollars() / n as f64;
        let dollars: Vec<f64> = self
            .outcomes
            .iter()
            .map(|o| o.cost.total().as_dollars() + share)
            .collect();
        Summary::from_values(&dollars)
    }

    /// Outcomes of one workload kind.
    pub fn by_kind(&self, kind: WorkloadKind) -> Vec<&RequestOutcome> {
        self.outcomes.iter().filter(|o| o.kind == kind).collect()
    }

    /// Overall cache hit rate.
    pub fn hit_rate(&self) -> f64 {
        let hits: u64 = self.outcomes.iter().map(|o| o.cache_hits as u64).sum();
        let misses: u64 = self.outcomes.iter().map(|o| o.cache_misses as u64).sum();
        if hits + misses == 0 {
            1.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }
}

/// Drives `system` through one FL job plus a request trace.
///
/// Rounds are ingested at an even cadence across the window; requests
/// arrive Poisson. Each request targets the *latest ingested round* (the FL
/// pattern the paper's policies exploit); P3 requests pick a tracked client
/// from that round's participants, cycling through a small set of clients
/// under audit.
pub fn drive<S: ServingSystem>(
    system: &mut S,
    job_cfg: &FlJobConfig,
    trace: &TraceConfig,
) -> DriveReport {
    assert!(
        !trace.kinds.is_empty(),
        "trace needs at least one workload kind"
    );
    let mut sim = FlJobSim::new(job_cfg.clone());
    let mut rng = DetRng::stream(trace.seed, "trace-targets");

    let round_interval = trace.window.div_u64(u64::from(job_cfg.rounds.max(1)));
    let arrivals =
        crate::arrival::poisson_arrivals(trace.seed, SimTime::ZERO, trace.window, trace.requests);

    let mut outcomes = Vec::with_capacity(trace.requests);
    let mut errors = 0usize;
    let mut next_round_at = SimTime::ZERO;
    let mut latest: Option<RoundRecord> = None;
    let mut audited: Vec<ClientId> = Vec::new();
    let mut request_seq = 0u64;

    for at in arrivals {
        // Ingest every round due before this arrival.
        while next_round_at <= at {
            match sim.next_round() {
                Some(record) => {
                    system.ingest_round(next_round_at, &record);
                    latest = Some(record);
                    next_round_at += round_interval;
                }
                None => break,
            }
        }
        let Some(record) = latest.as_ref() else {
            errors += 1;
            continue;
        };
        let kind = trace.kinds[request_seq as usize % trace.kinds.len()];
        request_seq += 1;
        let client = match kind.policy_class() {
            PolicyClass::P3AcrossRounds => {
                // Audits focus on a rotating handful of clients.
                if audited.len() < 4 {
                    let pick = record.updates[rng.index(record.updates.len())].client;
                    if !audited.contains(&pick) {
                        audited.push(pick);
                    }
                }
                Some(audited[request_seq as usize % audited.len()])
            }
            _ => None,
        };
        let request = WorkloadRequest::new(
            RequestId::new(request_seq),
            kind,
            JobId::new(job_cfg.job.as_u32()),
            record.round,
            client,
        );
        match system.serve_request(at, &request) {
            Some(outcome) => outcomes.push(outcome),
            None => errors += 1,
        }
    }

    let end = SimTime::ZERO + trace.window;
    DriveReport {
        label: system.label(),
        outcomes,
        errors,
        total_cost: system.window_cost(end),
        infra_cost: system.infra_cost(end),
        window: trace.window,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flstore_baselines::agg::AggregatorConfig;
    use flstore_core::policy::TailoredPolicy;
    use flstore_core::store::FlStoreConfig;
    use flstore_serverless::platform::{PlatformConfig, ReclaimModel};

    fn small_job() -> FlJobConfig {
        FlJobConfig {
            rounds: 20,
            ..FlJobConfig::quick_test(JobId::new(1))
        }
    }

    fn flstore(job: &FlJobConfig) -> FlStore {
        let cfg = FlStoreConfig {
            platform: PlatformConfig {
                reclaim: ReclaimModel::DISABLED,
                ..PlatformConfig::default()
            },
            ..FlStoreConfig::for_model(&job.model)
        };
        FlStore::new(cfg, Box::new(TailoredPolicy::new()), job.job, job.model)
    }

    #[test]
    fn drives_flstore_through_a_trace() {
        let job = small_job();
        let mut store = flstore(&job);
        let report = drive(&mut store, &job, &TraceConfig::smoke(5));
        assert_eq!(report.label, "FLStore");
        assert!(
            report.outcomes.len() >= 35,
            "served {}",
            report.outcomes.len()
        );
        assert!(report.hit_rate() > 0.8, "hit rate {}", report.hit_rate());
        assert!(report.total_cost.total().as_dollars() > 0.0);
    }

    #[test]
    fn drives_baseline_with_identical_trace() {
        let job = small_job();
        let mut agg = AggregatorBaseline::new(
            AggregatorConfig::objstore_agg(),
            job.job,
            job.model,
            SimTime::ZERO,
        );
        let report = drive(&mut agg, &job, &TraceConfig::smoke(5));
        assert_eq!(report.label, "ObjStore-Agg");
        assert!(report.outcomes.len() >= 35);
        // Baseline never hits a serverless cache.
        assert!(report.hit_rate() < 0.6);
    }

    #[test]
    fn flstore_beats_objstore_agg_on_latency() {
        let job = small_job();
        let trace = TraceConfig::smoke(7);
        let mut store = flstore(&job);
        let fl = drive(&mut store, &job, &trace);
        let mut agg = AggregatorBaseline::new(
            AggregatorConfig::objstore_agg(),
            job.job,
            job.model,
            SimTime::ZERO,
        );
        let base = drive(&mut agg, &job, &trace);
        let fl_mean = fl.latency_summary().expect("served").mean;
        let base_mean = base.latency_summary().expect("served").mean;
        assert!(
            fl_mean < base_mean * 0.6,
            "FLStore {fl_mean:.2}s vs ObjStore-Agg {base_mean:.2}s"
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let job = small_job();
        let trace = TraceConfig::smoke(9);
        let mut a = flstore(&job);
        let mut b = flstore(&job);
        let ra = drive(&mut a, &job, &trace);
        let rb = drive(&mut b, &job, &trace);
        assert_eq!(ra.outcomes.len(), rb.outcomes.len());
        let la: Vec<f64> = ra
            .outcomes
            .iter()
            .map(|o| o.latency.total().as_secs_f64())
            .collect();
        let lb: Vec<f64> = rb
            .outcomes
            .iter()
            .map(|o| o.latency.total().as_secs_f64())
            .collect();
        assert_eq!(la, lb);
    }
}
