//! # flstore-trace — traces, drivers, and scenario presets
//!
//! Generates the non-training request traces of the paper's evaluation and
//! replays them — together with the producing FL job — against any serving
//! architecture:
//!
//! * [`arrival`] — uniform / Poisson / burst arrival processes.
//! * [`driver`] — the [`driver::drive`] / [`driver::drive_batched`] /
//!   [`driver::drive_parallel`] replay loops over the unified front door
//!   (`flstore_core::api::Service`), external JSON-lines traces
//!   ([`driver::TraceConfig::from_jsonl`]), and [`driver::DriveReport`]
//!   summaries.
//! * [`scenario`] — one preset per paper experiment: eval jobs, policy
//!   variants, fault-injection deployments, the 50-hour trace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrival;
pub mod driver;
pub mod scenario;

pub use driver::{
    drive, drive_batched, drive_parallel, BatchConfig, DriveReport, TraceConfig, TraceError,
    TraceEvent,
};
pub use scenario::PolicyVariant;
