//! # flstore-trace — traces, drivers, and scenario presets
//!
//! Generates the non-training request traces of the paper's evaluation and
//! replays them — together with the producing FL job — against any serving
//! architecture:
//!
//! * [`arrival`] — uniform / Poisson / burst arrival processes.
//! * [`driver`] — the [`ServingSystem`](driver::ServingSystem) trait
//!   (implemented for `FlStore` and `AggregatorBaseline`), the
//!   [`drive`](driver::drive) loop, and [`DriveReport`](driver::DriveReport)
//!   summaries.
//! * [`scenario`] — one preset per paper experiment: eval jobs, policy
//!   variants, fault-injection deployments, the 50-hour trace.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arrival;
pub mod driver;
pub mod scenario;

pub use driver::{drive, DriveReport, ServingSystem, TraceConfig};
pub use scenario::PolicyVariant;
