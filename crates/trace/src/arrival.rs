//! Request arrival processes.

use flstore_sim::rng::DetRng;
use flstore_sim::time::{SimDuration, SimTime};

/// `n` arrivals evenly spaced over `[start, start + window)`.
pub fn uniform_arrivals(start: SimTime, window: SimDuration, n: usize) -> Vec<SimTime> {
    if n == 0 {
        return Vec::new();
    }
    let step = window.as_micros() / n as u64;
    (0..n)
        .map(|i| start + SimDuration::from_micros(step * i as u64))
        .collect()
}

/// `n` Poisson arrivals over `[start, start + window)` (exponential
/// inter-arrival times rescaled to land exactly `n` arrivals inside the
/// window), sorted ascending.
pub fn poisson_arrivals(seed: u64, start: SimTime, window: SimDuration, n: usize) -> Vec<SimTime> {
    if n == 0 {
        return Vec::new();
    }
    let mut rng = DetRng::stream(seed, "arrivals");
    // Draw n+1 exponential gaps, normalize so the n-th arrival falls inside
    // the window (a conditioned Poisson process — standard for generating a
    // fixed-count trace).
    let gaps: Vec<f64> = (0..=n).map(|_| rng.exponential(1.0)).collect();
    let total: f64 = gaps.iter().sum();
    let scale = window.as_secs_f64() / total;
    let mut t = 0.0;
    let mut arrivals = Vec::with_capacity(n);
    for gap in gaps.iter().take(n) {
        t += gap * scale;
        arrivals.push(start + SimDuration::from_secs_f64(t));
    }
    arrivals
}

/// `n` simultaneous arrivals at `at` (the scalability experiment's burst).
pub fn burst_arrivals(at: SimTime, n: usize) -> Vec<SimTime> {
    vec![at; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_evenly_spaced() {
        let arrivals = uniform_arrivals(SimTime::ZERO, SimDuration::from_secs(100), 10);
        assert_eq!(arrivals.len(), 10);
        assert_eq!(arrivals[0], SimTime::ZERO);
        let gap = arrivals[1] - arrivals[0];
        for pair in arrivals.windows(2) {
            assert_eq!(pair[1] - pair[0], gap);
        }
        assert!(arrivals[9] < SimTime::from_secs(100));
    }

    #[test]
    fn poisson_is_sorted_and_in_window() {
        let window = SimDuration::from_hours(50);
        let arrivals = poisson_arrivals(3, SimTime::ZERO, window, 3000);
        assert_eq!(arrivals.len(), 3000);
        for pair in arrivals.windows(2) {
            assert!(pair[0] <= pair[1]);
        }
        assert!(*arrivals.last().expect("non-empty") < SimTime::ZERO + window);
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let w = SimDuration::from_hours(1);
        let a = poisson_arrivals(9, SimTime::ZERO, w, 50);
        let b = poisson_arrivals(9, SimTime::ZERO, w, 50);
        let c = poisson_arrivals(10, SimTime::ZERO, w, 50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_traces() {
        assert!(uniform_arrivals(SimTime::ZERO, SimDuration::from_secs(1), 0).is_empty());
        assert!(poisson_arrivals(1, SimTime::ZERO, SimDuration::from_secs(1), 0).is_empty());
        assert_eq!(burst_arrivals(SimTime::from_secs(5), 3).len(), 3);
    }
}
