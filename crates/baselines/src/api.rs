//! The baselines behind the unified front door: [`Service`] for
//! [`AggregatorBaseline`], so FLStore-vs-baseline comparisons drive every
//! architecture through the same typed envelopes.

use flstore_core::api::{ApiError, Request, Response, Service, StatsReport};
use flstore_core::store::ServedRequest;
use flstore_sim::cost::{Cost, CostBreakdown};
use flstore_sim::time::SimTime;

use crate::agg::AggregatorBaseline;
use crate::error::BaselineError;

impl From<BaselineError> for ApiError {
    fn from(e: BaselineError) -> Self {
        match e {
            BaselineError::NoData { request } => ApiError::NoData { request },
            BaselineError::Store(e) => ApiError::Store(e),
            BaselineError::Workload(e) => ApiError::Workload(e),
        }
    }
}

impl Service for AggregatorBaseline {
    fn label(&self) -> String {
        AggregatorBaseline::label(self).to_string()
    }

    fn submit(&mut self, now: SimTime, request: Request) -> Response {
        let own = self.catalog().job();
        if let Some(job) = request.job() {
            if job != own {
                return Response::Rejected(ApiError::UnknownJob { job });
            }
        }
        match request {
            Request::Ingest { record, .. } => Response::Ingested(self.ingest_round(now, &record)),
            Request::Serve(request) => match self.serve(now, &request) {
                Ok((outcome, measured)) => {
                    Response::Served(Box::new(ServedRequest { outcome, measured }))
                }
                Err(e) => Response::Rejected(e.into()),
            },
            Request::Evict(key) => Response::Evicted {
                was_cached: self.evict(&key),
            },
            Request::Stats => Response::Stats(StatsReport::from_ledger(
                Service::label(self),
                self.ledger(),
                0,
            )),
        }
    }

    fn window_cost(&mut self, now: SimTime) -> CostBreakdown {
        self.total_cost(now)
    }

    fn infra_cost(&mut self, now: SimTime) -> Cost {
        AggregatorBaseline::infra_cost(self, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggregatorConfig;
    use flstore_fl::ids::JobId;
    use flstore_fl::job::{FlJobConfig, FlJobSim};
    use flstore_fl::metadata::MetaKey;
    use flstore_sim::time::SimDuration;
    use flstore_workloads::request::{RequestId, WorkloadRequest};
    use flstore_workloads::taxonomy::WorkloadKind;

    fn loaded(
        cfg_for: fn() -> AggregatorConfig,
    ) -> (
        AggregatorBaseline,
        FlJobConfig,
        Vec<flstore_fl::job::RoundRecord>,
    ) {
        let job = FlJobConfig {
            rounds: 4,
            ..FlJobConfig::quick_test(JobId::new(1))
        };
        let mut agg = AggregatorBaseline::new(cfg_for(), job.job, job.model, SimTime::ZERO);
        let records: Vec<_> = FlJobSim::new(job.clone()).collect();
        let mut now = SimTime::ZERO;
        for r in &records {
            let response = agg.submit(
                now,
                Request::Ingest {
                    job: job.job,
                    record: std::sync::Arc::new(r.clone()),
                },
            );
            assert!(matches!(response, Response::Ingested(r) if r.backed_up > 0));
            now += SimDuration::from_secs(120);
        }
        (agg, job, records)
    }

    #[test]
    fn baseline_serves_through_the_front_door() {
        let (mut agg, job, records) = loaded(AggregatorConfig::objstore_agg);
        let now = SimTime::from_secs(3600);
        let request = WorkloadRequest::new(
            RequestId::new(1),
            WorkloadKind::MaliciousFiltering,
            job.job,
            records.last().expect("rounds").round,
            None,
        );
        let response = agg.submit(now, Request::Serve(request));
        let served = response.served().expect("served");
        assert_eq!(served.measured.cache_hits, 0);

        let Response::Stats(stats) = agg.submit(now, Request::Stats) else {
            panic!("stats envelope answers with stats");
        };
        assert_eq!(stats.label, "ObjStore-Agg");
        assert_eq!(stats.served, 1);
        assert_eq!(stats.faults, 0);
    }

    #[test]
    fn baseline_admission_rejects_foreign_jobs() {
        let (mut agg, _, records) = loaded(AggregatorConfig::objstore_agg);
        let round = records.last().expect("rounds").round;
        let foreign = JobId::new(7);
        let request = WorkloadRequest::new(
            RequestId::new(1),
            WorkloadKind::Inference,
            foreign,
            round,
            None,
        );
        let response = agg.submit(SimTime::from_secs(3600), Request::Serve(request));
        assert_eq!(
            response.error(),
            Some(&ApiError::UnknownJob { job: foreign })
        );
        assert!(agg.ledger().is_empty());
    }

    #[test]
    fn undersized_cache_agg_receipt_reports_pressure() {
        // A cluster smaller than one round's metadata must not claim every
        // object ended resident: the receipt reflects refused blobs and
        // LRU victims instead of hardcoding cached == backed_up.
        use flstore_cloud::memcache::MemCacheConfig;
        use flstore_cloud::pricing::CacheNodePricing;
        use flstore_sim::bytes::ByteSize;

        let job = FlJobConfig {
            rounds: 1,
            ..FlJobConfig::quick_test(JobId::new(1))
        };
        let mut cfg = AggregatorConfig::cache_agg(job.round_metadata_bytes());
        cfg.cache = Some(MemCacheConfig {
            node: CacheNodePricing {
                capacity: ByteSize::from_bytes(job.round_metadata_bytes().as_bytes() / 3),
                per_node_hour: 1.0,
            },
            nodes: 1,
            ..MemCacheConfig::default()
        });
        let mut tight = AggregatorBaseline::new(cfg, job.job, job.model, SimTime::ZERO);
        let record = FlJobSim::new(job).next().expect("one round");
        let receipt = tight.ingest_round(SimTime::ZERO, &record);
        assert!(receipt.backed_up > 0);
        assert!(
            receipt.cached < receipt.backed_up,
            "a third-of-a-round cluster cannot hold a full round ({} cached of {})",
            receipt.cached,
            receipt.backed_up
        );
        assert!(receipt.cached + receipt.evicted > 0, "something was set");
    }

    #[test]
    fn cache_agg_eviction_is_visible_through_the_envelope() {
        let (mut agg, job, records) =
            loaded(|| AggregatorConfig::cache_agg(flstore_sim::bytes::ByteSize::from_gb(4)));
        let round = records.last().expect("rounds").round;
        let key = MetaKey::aggregate(job.job, round);
        let now = SimTime::from_secs(3600);
        assert_eq!(
            agg.submit(now, Request::Evict(key)),
            Response::Evicted { was_cached: true }
        );
        assert_eq!(
            agg.submit(now, Request::Evict(key)),
            Response::Evicted { was_cached: false }
        );
    }
}
