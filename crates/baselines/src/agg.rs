//! Conventional FL aggregator baselines (paper §5.1, Fig. 3).
//!
//! Both baselines keep the compute plane (a dedicated SageMaker-class VM)
//! separate from the data plane:
//!
//! * **ObjStore-Agg** — data plane is an S3-class object store: every
//!   request fetches its inputs across the slow object-store path, computes
//!   on the VM, and writes the result back.
//! * **Cache-Agg** — data plane is an ElastiCache-class in-memory cluster
//!   (with object-store backing): faster fetches, but the cluster bills
//!   node-hours around the clock and the data still crosses planes to reach
//!   the VM.

use flstore_cloud::blob::Blob;
use flstore_cloud::memcache::{MemCache, MemCacheConfig};
use flstore_cloud::objstore::{ObjectStore, ObjectStoreConfig};
use flstore_cloud::vm::{VmInstance, VmType};
use flstore_core::store::IngestReceipt;
use flstore_fl::decoded::{DecodedCache, DecodedStats};
use flstore_fl::ids::JobId;
use flstore_fl::job::RoundRecord;
use flstore_fl::metadata::{round_entries, SharedValue};
use flstore_fl::zoo::ModelArch;
use flstore_sim::bytes::ByteSize;
use flstore_sim::cost::{Cost, CostBreakdown};
use flstore_sim::latency::LatencyBreakdown;
use flstore_sim::time::{SimDuration, SimTime};
use flstore_workloads::request::{JobCatalog, WorkloadRequest};
use flstore_workloads::run::{execute, WorkloadOutcome};
use flstore_workloads::service::{RequestOutcome, ServiceLedger};

use crate::error::BaselineError;

/// Which data plane backs the aggregator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPlaneKind {
    /// S3-class object store (the ObjStore-Agg baseline).
    ObjectStore,
    /// ElastiCache-class in-memory cluster with object-store backing
    /// (the Cache-Agg baseline).
    MemCache,
}

impl DataPlaneKind {
    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            DataPlaneKind::ObjectStore => "ObjStore-Agg",
            DataPlaneKind::MemCache => "Cache-Agg",
        }
    }
}

/// Baseline configuration.
#[derive(Debug, Clone)]
pub struct AggregatorConfig {
    /// Aggregator instance type (the paper deploys ml.m5.4xlarge).
    pub vm: VmType,
    /// Concurrent request slots on the aggregator.
    pub worker_slots: usize,
    /// Data plane selection.
    pub data_plane: DataPlaneKind,
    /// Object-store parameters (persistent plane; also Cache-Agg backing).
    pub objstore: ObjectStoreConfig,
    /// Cache parameters (Cache-Agg only). When `None` for a
    /// [`DataPlaneKind::MemCache`] baseline, the cluster is sized for
    /// `working_set`.
    pub cache: Option<MemCacheConfig>,
    /// Working set the Cache-Agg cluster must hold (defaults to ~1000
    /// rounds of the job's metadata when building via
    /// [`AggregatorBaseline::new`]).
    pub working_set: ByteSize,
    /// Request routing/bookkeeping overhead.
    pub routing_overhead: SimDuration,
}

impl AggregatorConfig {
    /// The paper's ObjStore-Agg setup for one job.
    pub fn objstore_agg() -> Self {
        AggregatorConfig {
            vm: VmType::ML_M5_4XLARGE,
            worker_slots: 1,
            data_plane: DataPlaneKind::ObjectStore,
            objstore: ObjectStoreConfig::default(),
            cache: None,
            working_set: ByteSize::ZERO,
            routing_overhead: SimDuration::from_millis(2),
        }
    }

    /// The paper's Cache-Agg setup: an ElastiCache cluster sized to hold the
    /// job's metadata working set.
    pub fn cache_agg(working_set: ByteSize) -> Self {
        AggregatorConfig {
            data_plane: DataPlaneKind::MemCache,
            working_set,
            ..AggregatorConfig::objstore_agg()
        }
    }
}

/// A conventional aggregator baseline serving non-training requests.
///
/// # Examples
///
/// ```
/// use flstore_baselines::agg::{AggregatorBaseline, AggregatorConfig};
/// use flstore_fl::ids::JobId;
/// use flstore_fl::job::{FlJobConfig, FlJobSim};
/// use flstore_sim::time::SimTime;
///
/// let cfg = FlJobConfig::quick_test(JobId::new(1));
/// let mut agg = AggregatorBaseline::new(
///     AggregatorConfig::objstore_agg(),
///     cfg.job,
///     cfg.model,
///     SimTime::ZERO,
/// );
/// let mut sim = FlJobSim::new(cfg);
/// let record = sim.next().expect("rounds");
/// agg.ingest_round(SimTime::ZERO, &record);
/// ```
#[derive(Debug)]
pub struct AggregatorBaseline {
    cfg: AggregatorConfig,
    vm: VmInstance,
    objstore: ObjectStore,
    cache: Option<MemCache>,
    /// One decoded handle per ingested object — bounded by the same set
    /// `objstore` retains for the experiment's lifetime, so the layer
    /// tracks (not outgrows) existing memory behaviour. Entries survive
    /// memcache eviction on purpose: the backing-store refetch returns
    /// the identical payload bytes, so the old decode stays valid.
    decoded: DecodedCache,
    catalog: JobCatalog,
    ledger: ServiceLedger,
    launched: SimTime,
}

impl AggregatorBaseline {
    /// Launches the baseline at `now` for one job.
    pub fn new(cfg: AggregatorConfig, job: JobId, model: ModelArch, now: SimTime) -> Self {
        let cache = match cfg.data_plane {
            DataPlaneKind::ObjectStore => None,
            DataPlaneKind::MemCache => {
                let cache_cfg = cfg
                    .cache
                    .unwrap_or_else(|| MemCacheConfig::sized_for(cfg.working_set));
                Some(MemCache::new(cache_cfg, now))
            }
        };
        AggregatorBaseline {
            vm: VmInstance::launch(cfg.vm, now, cfg.worker_slots.max(1)),
            objstore: ObjectStore::new(cfg.objstore),
            cache,
            decoded: DecodedCache::new(),
            catalog: JobCatalog::new(job, model),
            ledger: ServiceLedger::new(),
            launched: now,
            cfg,
        }
    }

    /// The baseline's label ("ObjStore-Agg" / "Cache-Agg").
    pub fn label(&self) -> &'static str {
        self.cfg.data_plane.label()
    }

    /// Which data plane backs this baseline.
    pub fn data_plane(&self) -> DataPlaneKind {
        self.cfg.data_plane
    }

    /// The serving ledger.
    pub fn ledger(&self) -> &ServiceLedger {
        &self.ledger
    }

    /// The job catalog.
    pub fn catalog(&self) -> &JobCatalog {
        &self.catalog
    }

    /// The aggregator VM.
    pub fn vm(&self) -> &VmInstance {
        &self.vm
    }

    /// Cache statistics (Cache-Agg only).
    pub fn cache_stats(&self) -> Option<flstore_cloud::memcache::MemCacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Decoded-value layer statistics: how often the aggregator re-parsed
    /// blobs vs. reused a shared decoded handle.
    pub fn decoded_stats(&self) -> DecodedStats {
        self.decoded.stats()
    }

    /// Always-on infrastructure cost from launch to `now`: the aggregator
    /// instance plus (for Cache-Agg) the cache cluster node-hours.
    pub fn infra_cost(&self, now: SimTime) -> Cost {
        let mut cost = self.vm.uptime_cost(now);
        if let Some(cache) = &self.cache {
            cost += cache.infra_cost(now);
        }
        cost
    }

    /// Total experiment cost at `now`: per-request spend + background
    /// ingest spend + always-on infrastructure + storage rent.
    pub fn total_cost(&mut self, now: SimTime) -> CostBreakdown {
        let mut total = self.ledger.total_cost();
        total.infra += self.infra_cost(now);
        total.storage += self.objstore.storage_cost(now);
        total
    }

    /// Ingests a round: all metadata is stored in the data plane (and, for
    /// Cache-Agg, written through to the backing object store). The
    /// receipt reports what the cache actually did: `cached` counts
    /// objects that ended resident in the memcache cluster (0 for
    /// ObjStore-Agg, fewer than `backed_up` when an undersized cluster
    /// refuses oversized blobs), and `evicted` counts LRU victims shed to
    /// make room.
    pub fn ingest_round(&mut self, now: SimTime, record: &RoundRecord) -> IngestReceipt {
        let before_evictions = self.cache.as_ref().map_or(0, |c| c.stats().evictions);
        self.catalog.observe_round(record);
        let items = round_entries(record, self.catalog.job(), self.catalog.model());
        let stored = items.len();
        let okeys: Vec<_> = items.iter().map(|e| e.key.object_key()).collect();
        for e in items {
            let okey = e.key.object_key();
            let cost = self.objstore.put_async(now, okey.clone(), e.blob.clone());
            self.ledger.background_cost += cost;
            // The producer holds the decoded value: seed the decoded layer
            // so serving never re-parses bytes it already understood.
            self.decoded.seed(e.key, &e.blob, e.value);
            if let Some(cache) = &mut self.cache {
                cache.set(now, okey, e.blob);
            }
        }
        let cached = match &self.cache {
            // What actually ended resident: an undersized cluster refuses
            // oversized blobs and LRU-evicts earlier entries (possibly
            // from this very round).
            Some(cache) => okeys.iter().filter(|k| cache.contains(k)).count(),
            None => 0,
        };
        let evicted =
            (self.cache.as_ref().map_or(0, |c| c.stats().evictions) - before_evictions) as usize;
        IngestReceipt {
            cached,
            evicted,
            backed_up: stored,
            // Baselines have no per-tenant quota gate.
            quota_denied: 0,
        }
    }

    /// Evicts `key` from the baseline's volatile layers (memcache entry,
    /// decoded handle); the backing object store keeps its copy, exactly
    /// like `FlStore::evict` keeps the persistent one. Returns whether any
    /// layer actually held the key.
    pub fn evict(&mut self, key: &flstore_fl::metadata::MetaKey) -> bool {
        let mut dropped = false;
        if let Some(cache) = &mut self.cache {
            dropped |= cache.remove(&key.object_key());
        }
        let before = self.decoded.stats().invalidations;
        self.decoded.invalidate(key);
        dropped || self.decoded.stats().invalidations > before
    }

    /// Serves one non-training request: fetch inputs across the network from
    /// the data plane, compute on the aggregator VM, store the result back.
    ///
    /// # Errors
    ///
    /// * [`BaselineError::NoData`] when no ingested round satisfies the
    ///   request;
    /// * [`BaselineError::Store`] when the data plane lost an object;
    /// * [`BaselineError::Workload`] when the workload rejects its inputs.
    pub fn serve(
        &mut self,
        now: SimTime,
        request: &WorkloadRequest,
    ) -> Result<(WorkloadOutcome, RequestOutcome), BaselineError> {
        let needs = self.catalog.data_needs(request);
        if needs.is_empty() {
            return Err(BaselineError::NoData {
                request: request.id,
            });
        }

        let mut latency = LatencyBreakdown {
            routing: self.cfg.routing_overhead,
            ..LatencyBreakdown::ZERO
        };
        let mut cost = CostBreakdown::ZERO;
        let mut cache_hits = 0usize;
        let mut cache_misses = 0usize;

        // GET phase: fetch every input across the plane boundary.
        let mut blobs: Vec<Blob> = Vec::with_capacity(needs.len());
        match self.cfg.data_plane {
            DataPlaneKind::ObjectStore => {
                let okeys: Vec<_> = needs.iter().map(|k| k.object_key()).collect();
                let (fetched, receipt) = self.objstore.get_many(now, &okeys)?;
                cache_misses += fetched.len(); // every fetch crosses to S3
                latency.communication += receipt.latency;
                cost += receipt.cost;
                blobs = fetched;
            }
            DataPlaneKind::MemCache => {
                for key in &needs {
                    let okey = key.object_key();
                    let cache = self.cache.as_mut().expect("Cache-Agg has a cache");
                    match cache.get(now, &okey) {
                        Some((blob, receipt)) => {
                            cache_hits += 1;
                            latency.communication += receipt.latency;
                            cost += receipt.cost;
                            blobs.push(blob);
                        }
                        None => {
                            // Cold object: fall back to the backing store,
                            // then populate the cache (read-through).
                            let (blob, receipt) = self.objstore.get(now, &okey)?;
                            cache_misses += 1;
                            latency.communication += receipt.latency;
                            cost += receipt.cost;
                            let cache = self.cache.as_mut().expect("Cache-Agg has a cache");
                            cache.set(now, okey, blob.clone());
                            blobs.push(blob);
                        }
                    }
                }
            }
        }

        // Decode (at most once per object lifetime) and execute on the VM.
        // The decoded layer validates byte identity: a blob overwritten in
        // the data plane re-decodes, an unchanged one is an `Arc` clone.
        let values: Vec<SharedValue> = needs
            .iter()
            .zip(&blobs)
            .filter_map(|(key, blob)| self.decoded.get_or_decode(key, blob))
            .collect();
        let outcome = execute(request, &values, self.catalog.model().compute_scale())?;
        let fetch_done = now + latency.routing + latency.communication;
        let assignment = self.vm.execute(fetch_done, outcome.work);
        latency.queueing += assignment.queue_wait;
        let service = assignment.end.duration_since(assignment.start);
        latency.computation += service;
        // The VM is occupied for the whole fetch + compute span of this
        // request; that instance time is the request's compute bill.
        cost.compute += self.vm.busy_cost_of(latency.communication + service);

        // PUT phase: store the result back in the data plane (paper Fig. 3
        // step 3).
        let result_blob = Blob::synthetic(outcome.result_bytes);
        let result_key = flstore_cloud::blob::ObjectKey::new(format!("results/{}", request.id));
        let put = self.objstore.put(now, result_key, result_blob);
        latency.communication += put.latency;
        cost += put.cost;

        let measured = RequestOutcome {
            request: request.id,
            kind: request.kind,
            arrived: now,
            finished: now + latency.total(),
            latency,
            cost,
            cache_hits,
            cache_misses,
            recovered_from_fault: false,
        };
        self.ledger.outcomes.push(measured);
        Ok((outcome, measured))
    }

    /// Window length since launch.
    pub fn uptime(&self, now: SimTime) -> SimDuration {
        now.duration_since(self.launched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flstore_fl::job::{FlJobConfig, FlJobSim};
    use flstore_workloads::request::RequestId;
    use flstore_workloads::taxonomy::WorkloadKind;

    struct Rig {
        agg: AggregatorBaseline,
        records: Vec<RoundRecord>,
        now: SimTime,
    }

    fn rig(data_plane: DataPlaneKind, rounds: u32) -> Rig {
        let job_cfg = FlJobConfig {
            rounds,
            ..FlJobConfig::quick_test(JobId::new(1))
        };
        let cfg = match data_plane {
            DataPlaneKind::ObjectStore => AggregatorConfig::objstore_agg(),
            DataPlaneKind::MemCache => {
                AggregatorConfig::cache_agg(job_cfg.round_metadata_bytes() * rounds as u64)
            }
        };
        let mut agg = AggregatorBaseline::new(cfg, job_cfg.job, job_cfg.model, SimTime::ZERO);
        let records: Vec<RoundRecord> = FlJobSim::new(job_cfg).collect();
        let mut now = SimTime::ZERO;
        for r in &records {
            agg.ingest_round(now, r);
            now += SimDuration::from_secs(120);
        }
        Rig { agg, records, now }
    }

    fn p2_request(rig: &Rig, id: u64, round_idx: usize) -> WorkloadRequest {
        WorkloadRequest::new(
            RequestId::new(id),
            WorkloadKind::MaliciousFiltering,
            JobId::new(1),
            rig.records[round_idx].round,
            None,
        )
    }

    #[test]
    fn objstore_agg_is_communication_bound() {
        let mut rig = rig(DataPlaneKind::ObjectStore, 5);
        let req = p2_request(&rig, 1, 4);
        let (_, measured) = rig.agg.serve(rig.now, &req).expect("servable");
        let frac = measured.latency.communication_fraction();
        assert!(frac > 0.8, "communication fraction {frac}");
        assert!(measured.latency.communication > SimDuration::from_secs(10));
        assert_eq!(measured.cache_hits, 0);
    }

    #[test]
    fn cache_agg_is_faster_but_not_free() {
        let mut obj = rig(DataPlaneKind::ObjectStore, 5);
        let mut mem = rig(DataPlaneKind::MemCache, 5);
        let req_o = p2_request(&obj, 1, 4);
        let req_m = p2_request(&mem, 1, 4);
        let (_, o) = obj.agg.serve(obj.now, &req_o).expect("servable");
        let (_, m) = mem.agg.serve(mem.now, &req_m).expect("servable");
        assert!(
            m.latency.total() < o.latency.total(),
            "cache {} vs objstore {}",
            m.latency.total(),
            o.latency.total()
        );
        assert!(m.latency.communication > SimDuration::from_secs(1));
        assert!(m.cache_hits > 0);
    }

    #[test]
    fn cache_agg_infra_cost_dominates_window() {
        let mut mem = rig(DataPlaneKind::MemCache, 5);
        let req = p2_request(&mem, 1, 4);
        mem.agg.serve(mem.now, &req).expect("servable");
        let end = mem.now + SimDuration::from_hours(50);
        let infra = mem.agg.infra_cost(end);
        let request_spend = mem.agg.ledger().request_cost().total();
        assert!(
            infra.as_dollars() > 10.0 * request_spend.as_dollars(),
            "infra {infra} vs requests {request_spend}"
        );
        let total = mem.agg.total_cost(end);
        assert!(total.infra >= infra);
    }

    #[test]
    fn serving_never_reparses_ingested_metadata() {
        // Both data planes serve the bytes ingest wrote, so the decoded
        // layer (seeded at ingest) satisfies every request with `Arc`
        // clones: zero parses, however often the same data is served.
        for plane in [DataPlaneKind::ObjectStore, DataPlaneKind::MemCache] {
            let mut rig = rig(plane, 5);
            for i in 0..4 {
                let req = p2_request(&rig, i + 1, 4);
                rig.agg.serve(rig.now, &req).expect("servable");
            }
            let stats = rig.agg.decoded_stats();
            assert_eq!(
                stats.decodes,
                0,
                "{}: re-parsed ingested bytes",
                plane.label()
            );
            assert!(stats.hits > 0, "{}: no decoded hits", plane.label());
            assert!(stats.seeded > 0);
        }
    }

    #[test]
    fn results_are_identical_across_architectures() {
        // The same request over the same data must produce the same output
        // regardless of which architecture serves it.
        let mut obj = rig(DataPlaneKind::ObjectStore, 6);
        let mut mem = rig(DataPlaneKind::MemCache, 6);
        let req = p2_request(&obj, 9, 5);
        let (out_o, _) = obj.agg.serve(obj.now, &req).expect("servable");
        let (out_m, _) = mem.agg.serve(mem.now, &req).expect("servable");
        assert_eq!(out_o.output, out_m.output);
    }

    #[test]
    fn vm_queues_concurrent_requests() {
        let mut rig = rig(DataPlaneKind::ObjectStore, 4);
        let a = p2_request(&rig, 1, 3);
        let b = p2_request(&rig, 2, 3);
        let (_, ma) = rig.agg.serve(rig.now, &a).expect("servable");
        let (_, mb) = rig.agg.serve(rig.now, &b).expect("servable");
        assert!(ma.latency.queueing.is_zero());
        assert!(!mb.latency.queueing.is_zero(), "second request must queue");
    }

    #[test]
    fn unknown_round_errors() {
        let mut rig = rig(DataPlaneKind::ObjectStore, 3);
        let req = WorkloadRequest::new(
            RequestId::new(1),
            WorkloadKind::Clustering,
            JobId::new(1),
            flstore_fl::ids::Round::new(400),
            None,
        );
        assert!(matches!(
            rig.agg.serve(rig.now, &req).unwrap_err(),
            BaselineError::NoData { .. }
        ));
    }
}
