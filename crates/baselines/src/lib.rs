//! # flstore-baselines — conventional FL aggregator architectures
//!
//! The two baselines the paper evaluates against (§5.1, Fig. 3):
//!
//! * **ObjStore-Agg** — SageMaker-class aggregator + S3-class object store.
//! * **Cache-Agg** — SageMaker-class aggregator + ElastiCache-class
//!   in-memory cluster (object-store backed).
//!
//! Both run the *same* workload implementations as FLStore
//! (`flstore-workloads`), so latency/cost differences are purely
//! architectural: separated planes pay plane-crossing communication per
//! request and always-on infrastructure per hour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod agg;
pub mod api;
pub mod error;

pub use agg::{AggregatorBaseline, AggregatorConfig, DataPlaneKind};
pub use error::BaselineError;
