//! Baseline error types.

use std::error::Error;
use std::fmt;

use flstore_cloud::blob::StoreError;
use flstore_workloads::request::RequestId;
use flstore_workloads::run::WorkloadError;

/// Failures while a baseline serves a request.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// No ingested round satisfies the request.
    NoData {
        /// The offending request.
        request: RequestId,
    },
    /// The data plane lost an object.
    Store(StoreError),
    /// The workload rejected its inputs.
    Workload(WorkloadError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::NoData { request } => {
                write!(f, "no ingested data satisfies {request}")
            }
            BaselineError::Store(e) => write!(f, "data plane: {e}"),
            BaselineError::Workload(e) => write!(f, "workload: {e}"),
        }
    }
}

impl Error for BaselineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BaselineError::NoData { .. } => None,
            BaselineError::Store(e) => Some(e),
            BaselineError::Workload(e) => Some(e),
        }
    }
}

impl From<StoreError> for BaselineError {
    fn from(e: StoreError) -> Self {
        BaselineError::Store(e)
    }
}

impl From<WorkloadError> for BaselineError {
    fn from(e: WorkloadError) -> Self {
        BaselineError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = BaselineError::NoData {
            request: RequestId::new(5),
        };
        assert!(e.to_string().contains("req-5"));
    }
}
