//! # flstore-sim — deterministic simulation substrate
//!
//! Foundation crate for the FLStore reproduction. Provides the virtual
//! clock, deterministic random number generation, queueing, byte/cost/latency
//! accounting types, and descriptive statistics that every other crate in the
//! workspace builds on.
//!
//! Nothing in this crate knows about federated learning or cloud services;
//! it is a general discrete-time simulation toolkit:
//!
//! * [`time`] — [`SimTime`](time::SimTime) / [`SimDuration`](time::SimDuration)
//!   virtual-clock primitives (microsecond resolution).
//! * [`bytes`] — [`ByteSize`](bytes::ByteSize) logical data volumes.
//! * [`cost`] — [`Cost`](cost::Cost) dollars and
//!   [`CostBreakdown`](cost::CostBreakdown) category attribution.
//! * [`latency`] — [`LatencyBreakdown`](latency::LatencyBreakdown)
//!   comm/comp/queue/routing attribution.
//! * [`rng`] — [`DetRng`](rng::DetRng) seeded generator with the exponential
//!   / Pareto / Zipf / Dirichlet samplers the experiments need.
//! * [`queue`] — [`ServerPool`](queue::ServerPool) multi-server FIFO queueing.
//! * [`des`] — [`EventQueue`](des::EventQueue) deterministic future-event list.
//! * [`stats`] — [`Summary`](stats::Summary) / [`OnlineStats`](stats::OnlineStats).
//!
//! # Examples
//!
//! ```
//! use flstore_sim::prelude::*;
//!
//! // A request that queues on one of two servers, then transfers and computes.
//! let mut pool = ServerPool::new(2);
//! let arrival = SimTime::from_secs(10);
//! let service = SimDuration::from_secs_f64(2.8);
//! let grant = pool.assign(arrival, service);
//! let latency = LatencyBreakdown {
//!     queueing: grant.queue_wait,
//!     computation: service,
//!     ..LatencyBreakdown::ZERO
//! };
//! assert_eq!(latency.total(), SimDuration::from_secs_f64(2.8));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bytes;
pub mod cost;
pub mod des;
pub mod latency;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

/// Convenient glob-import of the types used by nearly every downstream crate.
pub mod prelude {
    pub use crate::bytes::ByteSize;
    pub use crate::cost::{Cost, CostBreakdown};
    pub use crate::des::EventQueue;
    pub use crate::latency::LatencyBreakdown;
    pub use crate::queue::{Assignment, ServerPool};
    pub use crate::rng::{DetRng, Zipf};
    pub use crate::stats::{reduction_pct, OnlineStats, Summary};
    pub use crate::time::{SimDuration, SimTime};
}
