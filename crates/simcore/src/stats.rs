//! Descriptive statistics for experiment reporting.
//!
//! The paper reports means, medians, quartiles (box plots) and extremes for
//! per-request latency and cost. [`Summary`] computes those from a sample,
//! and [`OnlineStats`] accumulates streaming moments without storing samples.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use flstore_sim::stats::OnlineStats;
///
/// let mut acc = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.count(), 4);
/// assert!((acc.mean() - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN; statistics over NaN are meaningless.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot accumulate NaN");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A five-number-plus summary of a sample: mean, std, min, quartiles, tail
/// percentiles, max.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile (25th percentile).
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// Third quartile (75th percentile).
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary from a sample.
    ///
    /// Returns `None` for an empty sample.
    ///
    /// # Panics
    ///
    /// Panics if any value is NaN.
    pub fn from_values(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("summary values must not be NaN"));
        let mut acc = OnlineStats::new();
        for v in &sorted {
            acc.push(*v);
        }
        Some(Summary {
            count: sorted.len(),
            mean: acc.mean(),
            std_dev: acc.std_dev(),
            min: sorted[0],
            p25: percentile_sorted(&sorted, 25.0),
            p50: percentile_sorted(&sorted, 50.0),
            p75: percentile_sorted(&sorted, 75.0),
            p90: percentile_sorted(&sorted, 90.0),
            p99: percentile_sorted(&sorted, 99.0),
            max: sorted[sorted.len() - 1],
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} p50={:.4} p90={:.4} p99={:.4} max={:.4}",
            self.count, self.mean, self.std_dev, self.min, self.p50, self.p90, self.p99, self.max
        )
    }
}

/// Percentile (0–100) of an already-sorted slice using linear interpolation
/// between closest ranks (the "exclusive" definition used by numpy's default).
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!(
        (0.0..=100.0).contains(&q),
        "percentile must be in [0,100], got {q}"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Relative reduction of `new` versus `baseline`, as a percentage in
/// `[-inf, 100]`. Returns 0 when the baseline is zero.
///
/// This is the headline metric of the paper ("FLStore reduces average
/// latency by 71%").
pub fn reduction_pct(baseline: f64, new: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (baseline - new) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for x in &data {
            whole.push(*x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for x in &data[..37] {
            left.push(*x);
        }
        for x in &data[37..] {
            right.push(*x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn summary_quartiles() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::from_values(&values).expect("non-empty");
        assert_eq!(s.count, 100);
        assert!((s.p50 - 50.5).abs() < 1e-9);
        assert!((s.p25 - 25.75).abs() < 1e-9);
        assert!((s.p75 - 75.25).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::from_values(&[]).is_none());
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile_sorted(&[42.0], 99.0), 42.0);
    }

    #[test]
    fn reduction_examples() {
        assert!((reduction_pct(100.0, 29.0) - 71.0).abs() < 1e-12);
        assert_eq!(reduction_pct(0.0, 10.0), 0.0);
        assert!(reduction_pct(10.0, 20.0) < 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_push_panics() {
        let mut s = OnlineStats::new();
        s.push(f64::NAN);
    }
}
