//! Deterministic random number generation.
//!
//! Every stochastic element of the simulation (weight noise, arrival times,
//! function reclamation, client heterogeneity) draws from a [`DetRng`] seeded
//! from the experiment configuration. Identical seeds reproduce identical
//! figures bit-for-bit.
//!
//! Distribution samplers that `rand` does not provide out of the box
//! (exponential, Pareto, Zipf, normal) are implemented here from first
//! principles to stay within the approved dependency set.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// SplitMix64 finalizer used to decorrelate derived seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, fork-able random number generator.
///
/// Wraps [`rand::rngs::StdRng`] and adds the distribution samplers the
/// simulation needs. Use [`DetRng::stream`] to derive independent generators
/// for different subsystems from one experiment seed so that adding draws in
/// one subsystem never perturbs another.
///
/// # Examples
///
/// ```
/// use flstore_sim::rng::DetRng;
///
/// let mut a = DetRng::stream(42, "clients");
/// let mut b = DetRng::stream(42, "clients");
/// assert_eq!(a.next_u64(), b.next_u64()); // same stream → same values
///
/// let mut c = DetRng::stream(42, "network");
/// let _ = c.u01(); // independent stream, does not disturb `a`
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: StdRng::seed_from_u64(splitmix64(seed)),
        }
    }

    /// Derives an independent generator for a named subsystem.
    ///
    /// The label is hashed (FNV-1a) into the seed so that streams with
    /// different labels are decorrelated even for adjacent seeds.
    pub fn stream(seed: u64, label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        DetRng::new(splitmix64(seed ^ h))
    }

    /// Splits off a child generator, advancing this one.
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.inner.gen::<u64>())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, 1)`.
    pub fn u01(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid uniform bounds [{lo}, {hi})"
        );
        lo + (hi - lo) * self.u01()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty range");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0,1], got {p}"
        );
        self.u01() < p
    }

    /// Exponential draw with the given rate (mean `1/rate`).
    ///
    /// Used for Poisson inter-arrival times.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "rate must be positive, got {rate}"
        );
        let u = self.u01();
        // 1 - u is in (0, 1], so the log is finite.
        -(1.0 - u).ln() / rate
    }

    /// Pareto (heavy-tail) draw with minimum `scale` and tail index `alpha`.
    ///
    /// InfiniCache's measurement study found AWS Lambda instance lifetimes to
    /// be heavy-tailed; this sampler drives the reclamation model.
    ///
    /// # Panics
    ///
    /// Panics unless `scale > 0` and `alpha > 0`.
    pub fn pareto(&mut self, scale: f64, alpha: f64) -> f64 {
        assert!(
            scale > 0.0 && alpha > 0.0,
            "pareto parameters must be positive"
        );
        let u = self.u01();
        scale / (1.0 - u).powf(1.0 / alpha)
    }

    /// Standard normal draw via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid u == 0 which would send ln to -inf.
        let u1 = (1.0 - self.u01()).max(f64::MIN_POSITIVE);
        let u2 = self.u01();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            std_dev >= 0.0 && std_dev.is_finite(),
            "std dev must be non-negative"
        );
        mean + std_dev * self.standard_normal()
    }

    /// Log-normal draw parameterized by the underlying normal's `mu`/`sigma`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Samples an index from a discrete distribution given by `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains negatives, or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(
            !weights.is_empty(),
            "weighted_index needs at least one weight"
        );
        let total: f64 = weights
            .iter()
            .map(|w| {
                assert!(*w >= 0.0 && w.is_finite(), "weights must be non-negative");
                *w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");
        let mut x = self.u01() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= *w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Chooses `k` distinct indices uniformly from `[0, n)` (reservoir-free,
    /// partial Fisher–Yates).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn choose_k(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot choose {k} items from {n}");
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.inner.gen_range(i..n);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }

    /// Samples a symmetric Dirichlet distribution of dimension `k` with
    /// concentration `alpha`, via normalized Gamma draws
    /// (Marsaglia–Tsang for `alpha >= 1`, boost trick below 1).
    ///
    /// Drives non-IID label partitions for FL clients.
    ///
    /// # Panics
    ///
    /// Panics unless `k > 0` and `alpha > 0`.
    pub fn dirichlet(&mut self, k: usize, alpha: f64) -> Vec<f64> {
        assert!(k > 0, "dirichlet dimension must be positive");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        let mut draws: Vec<f64> = (0..k).map(|_| self.gamma(alpha)).collect();
        let sum: f64 = draws.iter().sum();
        if sum <= 0.0 {
            // Numerically possible for tiny alpha; fall back to one-hot.
            let hot = self.index(k);
            draws.iter_mut().for_each(|d| *d = 0.0);
            draws[hot] = 1.0;
            return draws;
        }
        draws.iter_mut().for_each(|d| *d /= sum);
        draws
    }

    /// Gamma(shape, 1) draw via Marsaglia–Tsang.
    fn gamma(&mut self, shape: f64) -> f64 {
        if shape < 1.0 {
            // Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
            let g = self.gamma(shape + 1.0);
            return g * self.u01().powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.standard_normal();
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = self.u01();
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

/// A Zipf(`n`, `s`) sampler over ranks `1..=n` with exponent `s`.
///
/// Precomputes the CDF once; sampling is a binary search. Suitable for the
/// object-popularity and fault-burst models where `n` stays modest (≤ 1e6).
///
/// # Examples
///
/// ```
/// use flstore_sim::rng::{DetRng, Zipf};
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = DetRng::new(7);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=100).contains(&rank));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf support must be non-empty");
        assert!(
            s >= 0.0 && s.is_finite(),
            "zipf exponent must be non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks in the support.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the support is empty (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `1..=n`, rank 1 most popular.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.u01();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_are_decorrelated() {
        let mut a = DetRng::stream(1, "alpha");
        let mut b = DetRng::stream(1, "beta");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = DetRng::new(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = DetRng::new(10);
        for _ in 0..1000 {
            assert!(rng.pareto(60.0, 1.1) >= 60.0);
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = DetRng::new(11);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal(3.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.06, "mean was {mean}");
        assert!((var - 4.0).abs() < 0.25, "var was {var}");
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = DetRng::new(12);
        for alpha in [0.1, 0.5, 1.0, 5.0] {
            let p = rng.dirichlet(10, alpha);
            assert_eq!(p.len(), 10);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|x| *x >= 0.0));
        }
    }

    #[test]
    fn dirichlet_low_alpha_is_skewed() {
        let mut rng = DetRng::new(13);
        let p = rng.dirichlet(10, 0.05);
        let max = p.iter().cloned().fold(0.0, f64::max);
        assert!(
            max > 0.5,
            "low alpha should concentrate mass, max was {max}"
        );
    }

    #[test]
    fn choose_k_is_distinct() {
        let mut rng = DetRng::new(14);
        let picks = rng.choose_k(250, 10);
        assert_eq!(picks.len(), 10);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(sorted.iter().all(|i| *i < 250));
    }

    #[test]
    fn weighted_index_prefers_heavy() {
        let mut rng = DetRng::new(15);
        let weights = [0.01, 0.01, 10.0];
        let mut counts = [0usize; 3];
        for _ in 0..1000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert!(counts[2] > 900);
    }

    #[test]
    fn zipf_rank_one_most_frequent() {
        let zipf = Zipf::new(50, 1.2);
        let mut rng = DetRng::new(16);
        let mut counts = vec![0usize; 51];
        for _ in 0..10_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert_eq!(counts[0], 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn index_empty_panics() {
        let mut rng = DetRng::new(18);
        let _ = rng.index(0);
    }
}
