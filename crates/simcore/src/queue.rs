//! Multi-server FIFO queueing on the virtual clock.
//!
//! Concurrency effects — the knee in the paper's scalability experiment
//! (Fig. 12) where latency rises once parallel requests exceed the number of
//! cached function instances — come from contention for a bounded set of
//! servers. [`ServerPool`] models `c` identical servers with a shared FIFO
//! queue: each assignment picks the earliest-available server.

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Outcome of assigning one job to a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Index of the chosen server within the pool.
    pub server: usize,
    /// When service begins (>= arrival time).
    pub start: SimTime,
    /// When service completes.
    pub end: SimTime,
    /// Time spent waiting for a free server.
    pub queue_wait: SimDuration,
}

/// A pool of `c` identical servers with first-come-first-served assignment.
///
/// Jobs are assigned in call order; each job takes the server that frees up
/// earliest. This is an event-free equivalent of an M/G/c queue when callers
/// feed arrivals in non-decreasing time order.
///
/// # Examples
///
/// ```
/// use flstore_sim::queue::ServerPool;
/// use flstore_sim::time::{SimDuration, SimTime};
///
/// let mut pool = ServerPool::new(2);
/// let now = SimTime::ZERO;
/// let s = SimDuration::from_secs(10);
/// let a = pool.assign(now, s);
/// let b = pool.assign(now, s);
/// let c = pool.assign(now, s); // must wait for a server
/// assert!(a.queue_wait.is_zero() && b.queue_wait.is_zero());
/// assert_eq!(c.queue_wait, SimDuration::from_secs(10));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerPool {
    busy_until: Vec<SimTime>,
}

impl ServerPool {
    /// Creates a pool of `servers` idle servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "a server pool needs at least one server");
        ServerPool {
            busy_until: vec![SimTime::ZERO; servers],
        }
    }

    /// Number of servers in the pool.
    pub fn len(&self) -> usize {
        self.busy_until.len()
    }

    /// Always false: pools cannot be empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Assigns a job arriving at `now` with the given `service` time.
    ///
    /// Picks the earliest-available server, waits if none is free, and marks
    /// that server busy until completion.
    pub fn assign(&mut self, now: SimTime, service: SimDuration) -> Assignment {
        let (server, free_at) = self.earliest();
        let start = now.max(free_at);
        let end = start + service;
        self.busy_until[server] = end;
        Assignment {
            server,
            start,
            end,
            queue_wait: start.duration_since(now),
        }
    }

    /// Assigns a job to a *specific* server (used when data locality pins a
    /// request to the instance holding its inputs).
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn assign_to(&mut self, server: usize, now: SimTime, service: SimDuration) -> Assignment {
        assert!(server < self.busy_until.len(), "server index out of range");
        let free_at = self.busy_until[server];
        let start = now.max(free_at);
        let end = start + service;
        self.busy_until[server] = end;
        Assignment {
            server,
            start,
            end,
            queue_wait: start.duration_since(now),
        }
    }

    /// When the given server next becomes free.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn free_at(&self, server: usize) -> SimTime {
        self.busy_until[server]
    }

    /// The server that frees up earliest and its free time.
    pub fn earliest(&self) -> (usize, SimTime) {
        let mut best = 0;
        let mut best_time = self.busy_until[0];
        for (i, t) in self.busy_until.iter().enumerate().skip(1) {
            if *t < best_time {
                best = i;
                best_time = *t;
            }
        }
        (best, best_time)
    }

    /// Number of servers idle at `now`.
    pub fn idle_at(&self, now: SimTime) -> usize {
        self.busy_until.iter().filter(|t| **t <= now).count()
    }

    /// Grows or shrinks the pool. New servers start idle; shrinking drops the
    /// busiest servers last (it removes from the end).
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn resize(&mut self, servers: usize) {
        assert!(servers > 0, "a server pool needs at least one server");
        self.busy_until.resize(servers, SimTime::ZERO);
    }

    /// Marks every server idle again (new experiment window).
    pub fn reset(&mut self) {
        for t in &mut self.busy_until {
            *t = SimTime::ZERO;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn parallel_until_saturated() {
        // Mirrors Fig. 12: 5 servers, k simultaneous requests.
        let mut pool = ServerPool::new(5);
        let now = SimTime::ZERO;
        let service = secs(6);
        let mut ends = Vec::new();
        for _ in 0..10 {
            ends.push(pool.assign(now, service).end);
        }
        // First five finish at 6 s, next five at 12 s.
        for end in &ends[..5] {
            assert_eq!(*end, SimTime::from_secs(6));
        }
        for end in &ends[5..] {
            assert_eq!(*end, SimTime::from_secs(12));
        }
    }

    #[test]
    fn fifo_ordering_prefers_earliest_free() {
        let mut pool = ServerPool::new(2);
        let a = pool.assign(SimTime::ZERO, secs(10));
        let b = pool.assign(SimTime::ZERO, secs(2));
        assert_ne!(a.server, b.server);
        // Third job should land on the server finishing at 2 s.
        let c = pool.assign(SimTime::from_secs(1), secs(1));
        assert_eq!(c.server, b.server);
        assert_eq!(c.start, SimTime::from_secs(2));
        assert_eq!(c.queue_wait, secs(1));
    }

    #[test]
    fn assign_to_pins_server() {
        let mut pool = ServerPool::new(3);
        let a = pool.assign_to(1, SimTime::ZERO, secs(5));
        assert_eq!(a.server, 1);
        let b = pool.assign_to(1, SimTime::ZERO, secs(5));
        assert_eq!(b.start, SimTime::from_secs(5));
        assert_eq!(b.queue_wait, secs(5));
        // Other servers stayed idle.
        assert_eq!(pool.idle_at(SimTime::ZERO), 2);
    }

    #[test]
    fn resize_and_reset() {
        let mut pool = ServerPool::new(1);
        pool.assign(SimTime::ZERO, secs(100));
        pool.resize(3);
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.idle_at(SimTime::ZERO), 2);
        pool.reset();
        assert_eq!(pool.idle_at(SimTime::ZERO), 3);
    }

    #[test]
    fn arrival_after_busy_period_is_immediate() {
        let mut pool = ServerPool::new(1);
        pool.assign(SimTime::ZERO, secs(3));
        let late = pool.assign(SimTime::from_secs(10), secs(1));
        assert!(late.queue_wait.is_zero());
        assert_eq!(late.start, SimTime::from_secs(10));
    }
}
