//! A minimal discrete-event queue.
//!
//! Most of the reproduction composes latency analytically, but a few
//! processes are genuinely event-driven — keep-alive pings, function
//! reclamations, asynchronous prefetch completions. [`EventQueue`] provides
//! a deterministic time-ordered queue with stable FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// One scheduled entry.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Events scheduled for the same instant pop in insertion order, which keeps
/// simulations reproducible regardless of payload type.
///
/// # Examples
///
/// ```
/// use flstore_sim::des::EventQueue;
/// use flstore_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(5), "late");
/// q.schedule(SimTime::from_secs(1), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (SimTime::from_secs(1), "early"));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Removes the earliest event only if it fires at or before `deadline`.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= deadline {
            self.pop()
        } else {
            None
        }
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<i32>>());
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), "future");
        assert!(q.pop_before(SimTime::from_secs(4)).is_none());
        assert_eq!(q.len(), 1);
        assert!(q.pop_before(SimTime::from_secs(5)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
        assert!(q.peek_time().is_none());
    }
}
