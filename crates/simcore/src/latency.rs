//! Latency attribution.
//!
//! The paper's central claim is that non-training FL workloads are
//! *communication-bound* (≈99% of latency is data movement in the
//! ObjStore-Agg baseline) and that FLStore removes that component by
//! co-locating data and compute. Every simulated request therefore carries a
//! [`LatencyBreakdown`] mirroring the paper's comm/comp breakup figures
//! (Figs. 4, 15).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Per-request latency, attributed to four phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Request routing and bookkeeping (tracker/engine lookups, dispatch).
    pub routing: SimDuration,
    /// Waiting for a busy server/function instance.
    pub queueing: SimDuration,
    /// Data movement between data and compute planes.
    pub communication: SimDuration,
    /// Actual workload execution.
    pub computation: SimDuration,
}

impl LatencyBreakdown {
    /// An all-zero breakdown.
    pub const ZERO: LatencyBreakdown = LatencyBreakdown {
        routing: SimDuration::ZERO,
        queueing: SimDuration::ZERO,
        communication: SimDuration::ZERO,
        computation: SimDuration::ZERO,
    };

    /// A breakdown with only computation filled in.
    pub fn compute_only(d: SimDuration) -> Self {
        LatencyBreakdown {
            computation: d,
            ..LatencyBreakdown::ZERO
        }
    }

    /// A breakdown with only communication filled in.
    pub fn comm_only(d: SimDuration) -> Self {
        LatencyBreakdown {
            communication: d,
            ..LatencyBreakdown::ZERO
        }
    }

    /// End-to-end latency.
    pub fn total(&self) -> SimDuration {
        self.routing + self.queueing + self.communication + self.computation
    }

    /// Fraction of total latency spent in communication, in `[0, 1]`.
    /// Returns 0 for a zero-length request.
    pub fn communication_fraction(&self) -> f64 {
        let total = self.total();
        if total.is_zero() {
            0.0
        } else {
            self.communication.as_secs_f64() / total.as_secs_f64()
        }
    }
}

impl Add for LatencyBreakdown {
    type Output = LatencyBreakdown;
    fn add(self, rhs: LatencyBreakdown) -> LatencyBreakdown {
        LatencyBreakdown {
            routing: self.routing + rhs.routing,
            queueing: self.queueing + rhs.queueing,
            communication: self.communication + rhs.communication,
            computation: self.computation + rhs.computation,
        }
    }
}

impl AddAssign for LatencyBreakdown {
    fn add_assign(&mut self, rhs: LatencyBreakdown) {
        *self = *self + rhs;
    }
}

impl Sum for LatencyBreakdown {
    fn sum<I: Iterator<Item = LatencyBreakdown>>(iter: I) -> LatencyBreakdown {
        iter.fold(LatencyBreakdown::ZERO, Add::add)
    }
}

impl fmt::Display for LatencyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (route {}, queue {}, comm {}, comp {})",
            self.total(),
            self.routing,
            self.queueing,
            self.communication,
            self.computation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let lb = LatencyBreakdown {
            routing: SimDuration::from_millis(1),
            queueing: SimDuration::from_millis(99),
            communication: SimDuration::from_secs(89),
            computation: SimDuration::from_secs_f64(2.8),
        };
        assert_eq!(lb.total(), SimDuration::from_secs_f64(91.9));
        let frac = lb.communication_fraction();
        assert!(frac > 0.95 && frac < 0.98, "frac was {frac}");
    }

    #[test]
    fn zero_fraction_is_zero() {
        assert_eq!(LatencyBreakdown::ZERO.communication_fraction(), 0.0);
    }

    #[test]
    fn add_accumulates_fieldwise() {
        let a = LatencyBreakdown::comm_only(SimDuration::from_secs(1));
        let b = LatencyBreakdown::compute_only(SimDuration::from_secs(2));
        let c = a + b;
        assert_eq!(c.communication, SimDuration::from_secs(1));
        assert_eq!(c.computation, SimDuration::from_secs(2));
        let total: LatencyBreakdown = [a, b].into_iter().sum();
        assert_eq!(total, c);
    }
}
