//! Virtual time primitives.
//!
//! All latency accounting in the FLStore reproduction runs on a *virtual*
//! clock: operations report how long they would have taken on the modeled
//! hardware, and drivers advance [`SimTime`] accordingly. Nothing ever
//! sleeps, so a 50-hour experiment finishes in milliseconds and is exactly
//! reproducible.
//!
//! The unit is the microsecond, stored in a `u64`. That gives sub-millisecond
//! resolution for routing overheads while still representing ~584,000 years,
//! far beyond any simulated horizon.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of microseconds in one second.
const MICROS_PER_SEC: u64 = 1_000_000;
/// Number of microseconds in one millisecond.
const MICROS_PER_MILLI: u64 = 1_000;

/// An instant on the virtual clock, measured in microseconds since the
/// simulation epoch (time zero).
///
/// `SimTime` is an absolute point; spans between points are represented by
/// [`SimDuration`]. The two types cannot be confused thanks to the newtype
/// pattern.
///
/// # Examples
///
/// ```
/// use flstore_sim::time::{SimTime, SimDuration};
///
/// let start = SimTime::ZERO;
/// let later = start + SimDuration::from_secs(5);
/// assert_eq!(later.duration_since(start), SimDuration::from_secs(5));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after the epoch.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `secs` seconds after the epoch.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Creates an instant from fractional hours after the epoch.
    ///
    /// # Panics
    ///
    /// Panics if `hours` is negative or not finite.
    #[inline]
    pub fn from_hours_f64(hours: f64) -> Self {
        SimTime::ZERO + SimDuration::from_hours_f64(hours)
    }

    /// Microseconds since the epoch.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Hours since the epoch, as a float.
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// Saturates to [`SimDuration::ZERO`] when `earlier` is in the future,
    /// mirroring `std::time::Instant::saturating_duration_since`.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

/// A span of virtual time, measured in microseconds.
///
/// Arithmetic saturates rather than overflowing: simulated horizons never
/// approach `u64::MAX` microseconds, and saturating keeps accounting code
/// free of panics.
///
/// # Examples
///
/// ```
/// use flstore_sim::time::SimDuration;
///
/// let transfer = SimDuration::from_secs_f64(1.5);
/// let compute = SimDuration::from_millis(300);
/// assert_eq!((transfer + compute).as_secs_f64(), 1.8);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `micros` microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span of `millis` milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * MICROS_PER_MILLI)
    }

    /// Creates a span of `secs` whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Creates a span of `mins` whole minutes.
    #[inline]
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * MICROS_PER_SEC)
    }

    /// Creates a span of `hours` whole hours.
    #[inline]
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3600 * MICROS_PER_SEC)
    }

    /// Creates a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        let micros = secs * MICROS_PER_SEC as f64;
        assert!(
            micros <= u64::MAX as f64,
            "duration of {secs} seconds overflows the virtual clock"
        );
        SimDuration(micros.round() as u64)
    }

    /// Creates a span from fractional hours.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SimDuration::from_secs_f64`].
    #[inline]
    pub fn from_hours_f64(hours: f64) -> Self {
        SimDuration::from_secs_f64(hours * 3600.0)
    }

    /// The span in whole microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_MILLI as f64
    }

    /// The span in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The span in fractional hours.
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// True if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction; returns zero instead of underflowing.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Returns the longer of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the shorter of two spans.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Scales the span by a non-negative factor, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration scale factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Divides the span by `n` equal parts.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[inline]
    pub fn div_u64(self, n: u64) -> SimDuration {
        assert!(n != 0, "cannot divide a duration into zero parts");
        SimDuration(self.0 / n)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let micros = self.0;
        if micros == 0 {
            write!(f, "0s")
        } else if micros < MICROS_PER_MILLI {
            write!(f, "{micros}µs")
        } else if micros < MICROS_PER_SEC {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if micros < 3600 * MICROS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{:.3}h", self.as_hours_f64())
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        self.div_u64(rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a SimDuration> for SimDuration {
    fn sum<I: Iterator<Item = &'a SimDuration>>(iter: I) -> SimDuration {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(2_500);
        assert_eq!((t + d).as_micros(), 12_500_000);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn duration_since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.duration_since(late), SimDuration::ZERO);
        assert_eq!(late.duration_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn fractional_conversions() {
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d.as_micros(), 1_250_000);
        assert!((d.as_secs_f64() - 1.25).abs() < 1e-9);
        let h = SimDuration::from_hours_f64(0.5);
        assert_eq!(h.as_micros(), 1_800_000_000);
        assert!((h.as_hours_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_panic() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn scaling_and_division() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_secs_f64(2.5));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12µs");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimDuration::from_hours(2).to_string(), "2.000h");
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
    }

    #[test]
    fn sum_of_durations() {
        let parts = [
            SimDuration::from_secs(1),
            SimDuration::from_secs(2),
            SimDuration::from_secs(3),
        ];
        let total: SimDuration = parts.iter().sum();
        assert_eq!(total, SimDuration::from_secs(6));
    }

    #[test]
    fn min_max_helpers() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let ta = SimTime::from_secs(1);
        let tb = SimTime::from_secs(2);
        assert_eq!(ta.max(tb), tb);
        assert_eq!(ta.min(tb), ta);
    }
}
