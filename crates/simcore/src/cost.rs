//! Dollar-cost accounting.
//!
//! Every simulated cloud operation reports a [`Cost`]. Aggregations keep a
//! [`CostBreakdown`] so experiments can attribute spend to compute, storage,
//! data transfer, per-request fees, or always-on infrastructure — the same
//! decomposition the paper uses in its cost breakup figures (Figs. 8, 16, 17).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A dollar amount.
///
/// Stored as `f64` dollars; cloud price sheets bottom out around
/// $1e-9 per unit, well within `f64` precision for the magnitudes simulated
/// here (micro-dollars to thousands of dollars).
///
/// # Examples
///
/// ```
/// use flstore_sim::cost::Cost;
///
/// let lambda_gb_s = Cost::from_dollars(0.0000166667);
/// let invocation = lambda_gb_s * 12.0; // 4 GB for 3 seconds
/// assert!(invocation.as_dollars() < 0.001);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Cost(f64);

impl Cost {
    /// Zero dollars.
    pub const ZERO: Cost = Cost(0.0);

    /// Creates a cost of `dollars` dollars.
    ///
    /// # Panics
    ///
    /// Panics if `dollars` is negative or not finite — costs only accrue.
    #[inline]
    pub fn from_dollars(dollars: f64) -> Self {
        assert!(
            dollars.is_finite() && dollars >= 0.0,
            "cost must be finite and non-negative, got {dollars}"
        );
        Cost(dollars)
    }

    /// The amount in dollars.
    #[inline]
    pub const fn as_dollars(self) -> f64 {
        self.0
    }

    /// The amount in cents.
    #[inline]
    pub fn as_cents(self) -> f64 {
        self.0 * 100.0
    }

    /// True if the cost is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// Saturating subtraction; clamps at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Cost) -> Cost {
        Cost((self.0 - rhs.0).max(0.0))
    }

    /// Returns the larger of two costs.
    #[inline]
    pub fn max(self, other: Cost) -> Cost {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0.0 {
            write!(f, "$0")
        } else if self.0 < 0.001 {
            write!(f, "${:.3e}", self.0)
        } else if self.0 < 1.0 {
            write!(f, "${:.4}", self.0)
        } else {
            write!(f, "${:.2}", self.0)
        }
    }
}

impl Add for Cost {
    type Output = Cost;
    #[inline]
    fn add(self, rhs: Cost) -> Cost {
        Cost(self.0 + rhs.0)
    }
}

impl AddAssign for Cost {
    #[inline]
    fn add_assign(&mut self, rhs: Cost) {
        self.0 += rhs.0;
    }
}

impl Sub for Cost {
    type Output = Cost;
    #[inline]
    fn sub(self, rhs: Cost) -> Cost {
        self.saturating_sub(rhs)
    }
}

impl Mul<f64> for Cost {
    type Output = Cost;
    #[inline]
    fn mul(self, rhs: f64) -> Cost {
        Cost::from_dollars(self.0 * rhs)
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Cost> for Cost {
    fn sum<I: Iterator<Item = &'a Cost>>(iter: I) -> Cost {
        iter.copied().sum()
    }
}

/// Cost attributed to the five spend categories used throughout the paper's
/// evaluation.
///
/// * `compute` — CPU/GB-seconds actually consumed executing a workload
///   (Lambda duration billing, VM busy time).
/// * `storage` — at-rest storage (S3 GB-month, cache memory).
/// * `transfer` — data movement between planes (egress / cross-AZ GB).
/// * `requests` — per-operation fees (S3 GET/PUT, Lambda invocations).
/// * `infra` — always-on infrastructure amortization (dedicated aggregator
///   instance hours, ElastiCache node hours, keep-alive pings).
///
/// # Examples
///
/// ```
/// use flstore_sim::cost::{Cost, CostBreakdown};
///
/// let mut bill = CostBreakdown::ZERO;
/// bill.compute += Cost::from_dollars(0.002);
/// bill.transfer += Cost::from_dollars(0.07);
/// assert!((bill.total().as_dollars() - 0.072).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Compute-time billing (Lambda GB-s, VM busy seconds).
    pub compute: Cost,
    /// At-rest storage billing.
    pub storage: Cost,
    /// Data-transfer billing between data and compute planes.
    pub transfer: Cost,
    /// Per-request operation fees.
    pub requests: Cost,
    /// Always-on infrastructure amortization.
    pub infra: Cost,
}

impl CostBreakdown {
    /// An all-zero breakdown.
    pub const ZERO: CostBreakdown = CostBreakdown {
        compute: Cost::ZERO,
        storage: Cost::ZERO,
        transfer: Cost::ZERO,
        requests: Cost::ZERO,
        infra: Cost::ZERO,
    };

    /// A breakdown with only the compute slot filled.
    pub fn compute_only(c: Cost) -> Self {
        CostBreakdown {
            compute: c,
            ..CostBreakdown::ZERO
        }
    }

    /// A breakdown with only the transfer slot filled.
    pub fn transfer_only(c: Cost) -> Self {
        CostBreakdown {
            transfer: c,
            ..CostBreakdown::ZERO
        }
    }

    /// Sum across all categories.
    pub fn total(&self) -> Cost {
        self.compute + self.storage + self.transfer + self.requests + self.infra
    }

    /// Communication-attributable share: transfer plus request fees.
    ///
    /// This matches the paper's "communication cost" category in the cost
    /// breakup analysis (Appendix B).
    pub fn communication(&self) -> Cost {
        self.transfer + self.requests
    }

    /// Scales every category by `factor` (used for amortizing shared costs).
    pub fn scaled(&self, factor: f64) -> CostBreakdown {
        CostBreakdown {
            compute: self.compute * factor,
            storage: self.storage * factor,
            transfer: self.transfer * factor,
            requests: self.requests * factor,
            infra: self.infra * factor,
        }
    }
}

impl Add for CostBreakdown {
    type Output = CostBreakdown;
    fn add(self, rhs: CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            compute: self.compute + rhs.compute,
            storage: self.storage + rhs.storage,
            transfer: self.transfer + rhs.transfer,
            requests: self.requests + rhs.requests,
            infra: self.infra + rhs.infra,
        }
    }
}

impl AddAssign for CostBreakdown {
    fn add_assign(&mut self, rhs: CostBreakdown) {
        *self = *self + rhs;
    }
}

impl Sum for CostBreakdown {
    fn sum<I: Iterator<Item = CostBreakdown>>(iter: I) -> CostBreakdown {
        iter.fold(CostBreakdown::ZERO, Add::add)
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (compute {}, storage {}, transfer {}, requests {}, infra {})",
            self.total(),
            self.compute,
            self.storage,
            self.transfer,
            self.requests,
            self.infra
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_arithmetic() {
        let a = Cost::from_dollars(0.5);
        let b = Cost::from_dollars(0.25);
        assert_eq!((a + b).as_dollars(), 0.75);
        assert_eq!((b - a), Cost::ZERO); // saturates
        assert_eq!((a * 2.0).as_dollars(), 1.0);
        assert_eq!(a.max(b), a);
        assert!((a.as_cents() - 50.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_panics() {
        let _ = Cost::from_dollars(-0.01);
    }

    #[test]
    fn breakdown_totals() {
        let bd = CostBreakdown {
            compute: Cost::from_dollars(1.0),
            storage: Cost::from_dollars(2.0),
            transfer: Cost::from_dollars(3.0),
            requests: Cost::from_dollars(4.0),
            infra: Cost::from_dollars(5.0),
        };
        assert_eq!(bd.total().as_dollars(), 15.0);
        assert_eq!(bd.communication().as_dollars(), 7.0);
        let doubled = bd + bd;
        assert_eq!(doubled.total().as_dollars(), 30.0);
        assert_eq!(bd.scaled(0.1).total().as_dollars(), 1.5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cost::ZERO.to_string(), "$0");
        assert_eq!(Cost::from_dollars(0.1234).to_string(), "$0.1234");
        assert_eq!(Cost::from_dollars(12.3).to_string(), "$12.30");
        assert!(Cost::from_dollars(0.0000002)
            .to_string()
            .starts_with("$2.000e-7"));
    }

    #[test]
    fn sum_costs() {
        let costs = [Cost::from_dollars(0.1), Cost::from_dollars(0.2)];
        let total: Cost = costs.iter().sum();
        assert!((total.as_dollars() - 0.3).abs() < 1e-12);
    }
}
