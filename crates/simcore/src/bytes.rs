//! Byte quantities.
//!
//! The reproduction moves a lot of *logical* bytes around (model updates are
//! tens to hundreds of megabytes) while physically storing reduced-fidelity
//! payloads. [`ByteSize`] is the logical quantity used by every latency and
//! cost model.
//!
//! Decimal units are used throughout (1 MB = 10^6 bytes), matching how cloud
//! providers price storage and transfer and how the paper quotes model sizes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A quantity of bytes (decimal units: 1 kB = 1000 B).
///
/// # Examples
///
/// ```
/// use flstore_sim::bytes::ByteSize;
///
/// let model = ByteSize::from_mb_f64(82.7);
/// let round = model * 10; // ten client updates
/// assert!((round.as_gb_f64() - 0.827).abs() < 1e-9);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(u64);

/// Bytes per decimal kilobyte.
pub const KB: u64 = 1_000;
/// Bytes per decimal megabyte.
pub const MB: u64 = 1_000_000;
/// Bytes per decimal gigabyte.
pub const GB: u64 = 1_000_000_000;
/// Bytes per decimal terabyte.
pub const TB: u64 = 1_000_000_000_000;

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size of `bytes` bytes.
    #[inline]
    pub const fn from_bytes(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a size of `kb` decimal kilobytes.
    #[inline]
    pub const fn from_kb(kb: u64) -> Self {
        ByteSize(kb * KB)
    }

    /// Creates a size of `mb` decimal megabytes.
    #[inline]
    pub const fn from_mb(mb: u64) -> Self {
        ByteSize(mb * MB)
    }

    /// Creates a size of `gb` decimal gigabytes.
    #[inline]
    pub const fn from_gb(gb: u64) -> Self {
        ByteSize(gb * GB)
    }

    /// Creates a size from fractional megabytes.
    ///
    /// # Panics
    ///
    /// Panics if `mb` is negative or not finite.
    #[inline]
    pub fn from_mb_f64(mb: f64) -> Self {
        assert!(
            mb.is_finite() && mb >= 0.0,
            "byte size must be finite and non-negative, got {mb} MB"
        );
        ByteSize((mb * MB as f64).round() as u64)
    }

    /// Creates a size from fractional gigabytes.
    ///
    /// # Panics
    ///
    /// Panics if `gb` is negative or not finite.
    #[inline]
    pub fn from_gb_f64(gb: f64) -> Self {
        assert!(
            gb.is_finite() && gb >= 0.0,
            "byte size must be finite and non-negative, got {gb} GB"
        );
        ByteSize((gb * GB as f64).round() as u64)
    }

    /// The raw byte count.
    #[inline]
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// The size in fractional megabytes.
    #[inline]
    pub fn as_mb_f64(self) -> f64 {
        self.0 as f64 / MB as f64
    }

    /// The size in fractional gigabytes.
    #[inline]
    pub fn as_gb_f64(self) -> f64 {
        self.0 as f64 / GB as f64
    }

    /// The size in fractional terabytes.
    #[inline]
    pub fn as_tb_f64(self) -> f64 {
        self.0 as f64 / TB as f64
    }

    /// True if the size is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction; clamps at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b < KB {
            write!(f, "{b}B")
        } else if b < MB {
            write!(f, "{:.2}kB", b as f64 / KB as f64)
        } else if b < GB {
            write!(f, "{:.2}MB", b as f64 / MB as f64)
        } else if b < TB {
            write!(f, "{:.2}GB", b as f64 / GB as f64)
        } else {
            write!(f, "{:.2}TB", b as f64 / TB as f64)
        }
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for ByteSize {
    #[inline]
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for ByteSize {
    #[inline]
    fn sub_assign(&mut self, rhs: ByteSize) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    #[inline]
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0.saturating_mul(rhs))
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> ByteSize {
        iter.fold(ByteSize::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a ByteSize> for ByteSize {
    fn sum<I: Iterator<Item = &'a ByteSize>>(iter: I) -> ByteSize {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(ByteSize::from_kb(1), ByteSize::from_bytes(1_000));
        assert_eq!(ByteSize::from_mb(1), ByteSize::from_bytes(1_000_000));
        assert_eq!(ByteSize::from_gb(1), ByteSize::from_bytes(1_000_000_000));
        assert_eq!(ByteSize::from_mb_f64(1.5), ByteSize::from_bytes(1_500_000));
    }

    #[test]
    fn conversions_round_trip() {
        let s = ByteSize::from_mb_f64(160.88);
        assert!((s.as_mb_f64() - 160.88).abs() < 1e-6);
        assert!((s.as_gb_f64() - 0.16088).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = ByteSize::from_mb(100);
        let b = ByteSize::from_mb(60);
        assert_eq!(a + b, ByteSize::from_mb(160));
        assert_eq!(a - b, ByteSize::from_mb(40));
        assert_eq!(b - a, ByteSize::ZERO); // saturates
        assert_eq!(a * 10, ByteSize::from_gb(1));
    }

    #[test]
    fn display_scales() {
        assert_eq!(ByteSize::from_bytes(512).to_string(), "512B");
        assert_eq!(ByteSize::from_kb(2).to_string(), "2.00kB");
        assert_eq!(ByteSize::from_mb_f64(82.7).to_string(), "82.70MB");
        assert_eq!(ByteSize::from_gb(79).to_string(), "79.00GB");
        assert_eq!(
            ByteSize::from_bytes(1_500 * TB / 1_000).to_string(),
            "1.50TB"
        );
    }

    #[test]
    fn sum_works() {
        let parts = [ByteSize::from_mb(10), ByteSize::from_mb(20)];
        let total: ByteSize = parts.iter().sum();
        assert_eq!(total, ByteSize::from_mb(30));
    }
}
