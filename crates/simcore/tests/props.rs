//! Property-based invariants for the simulation substrate.

use proptest::prelude::*;

use flstore_sim::bytes::ByteSize;
use flstore_sim::queue::ServerPool;
use flstore_sim::rng::{DetRng, Zipf};
use flstore_sim::stats::{percentile_sorted, Summary};
use flstore_sim::time::{SimDuration, SimTime};

proptest! {
    #[test]
    fn time_add_sub_round_trips(base in 0u64..1_000_000_000_000, delta in 0u64..1_000_000_000) {
        let t = SimTime::from_micros(base);
        let d = SimDuration::from_micros(delta);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d) - t, d);
        prop_assert!(t + d >= t);
    }

    #[test]
    fn duration_sum_is_monotone(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let da = SimDuration::from_micros(a);
        let db = SimDuration::from_micros(b);
        prop_assert!(da + db >= da);
        prop_assert!(da + db >= db);
        prop_assert_eq!(da + db, db + da);
    }

    #[test]
    fn secs_conversion_is_consistent(micros in 0u64..10_000_000_000) {
        let d = SimDuration::from_micros(micros);
        let back = SimDuration::from_secs_f64(d.as_secs_f64());
        // Round-trip through f64 seconds is lossless at microsecond scale.
        prop_assert_eq!(back, d);
    }

    #[test]
    fn byte_size_arithmetic(a in 0u64..1_000_000_000_000, b in 0u64..1_000_000_000_000) {
        let sa = ByteSize::from_bytes(a);
        let sb = ByteSize::from_bytes(b);
        prop_assert_eq!(sa + sb, sb + sa);
        prop_assert_eq!((sa + sb) - sb, sa);
        prop_assert_eq!(sb - (sa + sb), ByteSize::ZERO); // saturates
    }

    #[test]
    fn summary_bounds_hold(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::from_values(&values).expect("non-empty");
        prop_assert!(s.min <= s.p25 + 1e-9);
        prop_assert!(s.p25 <= s.p50 + 1e-9);
        prop_assert!(s.p50 <= s.p75 + 1e-9);
        prop_assert!(s.p75 <= s.p90 + 1e-9);
        prop_assert!(s.p90 <= s.p99 + 1e-9);
        prop_assert!(s.p99 <= s.max + 1e-9);
        prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
    }

    #[test]
    fn percentile_is_monotone_in_q(values in prop::collection::vec(-1e6f64..1e6, 1..100),
                                   q1 in 0.0f64..100.0, q2 in 0.0f64..100.0) {
        let mut sorted = values;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(percentile_sorted(&sorted, lo) <= percentile_sorted(&sorted, hi) + 1e-9);
    }

    #[test]
    fn server_pool_never_starts_before_arrival(
        servers in 1usize..8,
        jobs in prop::collection::vec((0u64..10_000, 1u64..5_000), 1..50),
    ) {
        let mut pool = ServerPool::new(servers);
        let mut arrivals: Vec<(u64, u64)> = jobs;
        arrivals.sort_by_key(|(at, _)| *at);
        let mut per_server_last_end: Vec<SimTime> = vec![SimTime::ZERO; servers];
        for (at, service) in arrivals {
            let now = SimTime::from_micros(at);
            let a = pool.assign(now, SimDuration::from_micros(service));
            prop_assert!(a.start >= now);
            prop_assert_eq!(a.end - a.start, SimDuration::from_micros(service));
            prop_assert_eq!(a.queue_wait, a.start - now);
            // No overlap on the same server.
            prop_assert!(a.start >= per_server_last_end[a.server]);
            per_server_last_end[a.server] = a.end;
        }
    }

    #[test]
    fn zipf_samples_stay_in_support(n in 1usize..500, s in 0.0f64..3.0, seed in 0u64..1000) {
        let zipf = Zipf::new(n, s);
        let mut rng = DetRng::new(seed);
        for _ in 0..50 {
            let rank = zipf.sample(&mut rng);
            prop_assert!((1..=n).contains(&rank));
        }
    }

    #[test]
    fn dirichlet_is_a_distribution(k in 1usize..30, alpha in 0.05f64..10.0, seed in 0u64..1000) {
        let mut rng = DetRng::new(seed);
        let p = rng.dirichlet(k, alpha);
        prop_assert_eq!(p.len(), k);
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        prop_assert!(p.iter().all(|x| (0.0..=1.0 + 1e-9).contains(x)));
    }

    #[test]
    fn choose_k_yields_distinct_valid_indices(n in 1usize..200, seed in 0u64..1000) {
        let mut rng = DetRng::new(seed);
        let k = (n / 2).max(1);
        let picks = rng.choose_k(n, k);
        prop_assert_eq!(picks.len(), k);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k);
        prop_assert!(sorted.iter().all(|i| *i < n));
    }
}
