//! FedDebug-style debugging session (the paper's P3 workload class).
//!
//! A client has been submitting suspicious updates. This session rewinds
//! the client's history across rounds, computes its per-round influence on
//! the aggregate, and shows how FLStore's tailored policy turns the second
//! and later trace queries into pure cache hits.
//!
//! Run with:
//! ```sh
//! cargo run --release --example debugging_session
//! ```

use flstore_suite::fl::ids::JobId;
use flstore_suite::fl::job::{FlJobConfig, FlJobSim};
use flstore_suite::sim::time::{SimDuration, SimTime};
use flstore_suite::store::policy::TailoredPolicy;
use flstore_suite::store::store::{FlStore, FlStoreConfig};
use flstore_suite::workloads::outputs::WorkloadOutput;
use flstore_suite::workloads::request::{RequestId, WorkloadRequest};
use flstore_suite::workloads::taxonomy::WorkloadKind;

fn main() {
    // A job with a heavy poisoning problem: 30% malicious clients.
    let job = FlJobConfig {
        rounds: 30,
        total_clients: 20,
        clients_per_round: 8,
        malicious_fraction: 0.3,
        ..FlJobConfig::quick_test(JobId::new(7))
    };

    let mut store = FlStore::new(
        FlStoreConfig::for_model(&job.model),
        Box::new(TailoredPolicy::new()),
        job.job,
        job.model,
    );

    let mut now = SimTime::ZERO;
    let mut records = Vec::new();
    for record in FlJobSim::new(job.clone()) {
        store.ingest_round(now, &record);
        records.push(record);
        now += SimDuration::from_secs(90);
    }

    // Filter the last round to find a suspect.
    let last = records.last().expect("job ran");
    let filter = WorkloadRequest::new(
        RequestId::new(1),
        WorkloadKind::MaliciousFiltering,
        job.job,
        last.round,
        None,
    );
    let served = store.serve(now, &filter).expect("servable");
    let WorkloadOutput::Filtering(filtering) = &served.outcome.output else {
        unreachable!("filtering request returns filtering output");
    };
    println!(
        "round {}: flagged clients {:?}",
        last.round, filtering.flagged
    );

    let Some(&suspect) = filtering.flagged.first() else {
        println!("no suspect this round — rerun with another seed");
        return;
    };

    // Rewind the suspect across rounds (P3: first query misses old rounds,
    // the tailored policy then tracks the client).
    for (i, label) in ["first trace (cold)", "second trace (tracked)"]
        .iter()
        .enumerate()
    {
        let request = WorkloadRequest::new(
            RequestId::new(10 + i as u64),
            WorkloadKind::Debugging,
            job.job,
            last.round,
            Some(suspect),
        );
        let served = store.serve(now, &request).expect("servable");
        let WorkloadOutput::Debugging(trace) = &served.outcome.output else {
            unreachable!("debugging request returns a trace");
        };
        println!(
            "\n{label}: latency {}, hits {}, misses {}",
            served.measured.latency.total(),
            served.measured.cache_hits,
            served.measured.cache_misses,
        );
        println!("  suspect {} diagnosed faulty: {}", suspect, trace.faulty);
        for (round, influence) in &trace.per_round {
            println!("  {round}: influence {influence:.3}");
        }
        now += SimDuration::from_secs(30);
    }

    // Ground truth check (tests do this too; here it is for the reader).
    let truly_malicious = records
        .iter()
        .flat_map(|r| r.updates.iter())
        .find(|u| u.client == suspect)
        .map(|u| u.ground_truth_malicious)
        .unwrap_or(false);
    println!("\nground truth: {suspect} malicious = {truly_malicious}");
}
