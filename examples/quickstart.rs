//! Quickstart: stand up FLStore next to a small FL job, serve one request
//! of every workload, and compare against the conventional
//! aggregator-plus-object-store architecture.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flstore_suite::baselines::agg::{AggregatorBaseline, AggregatorConfig};
use flstore_suite::fl::ids::JobId;
use flstore_suite::fl::job::{FlJobConfig, FlJobSim};
use flstore_suite::sim::time::{SimDuration, SimTime};
use flstore_suite::store::policy::TailoredPolicy;
use flstore_suite::store::store::{FlStore, FlStoreConfig};
use flstore_suite::workloads::request::{RequestId, WorkloadRequest};
use flstore_suite::workloads::taxonomy::{PolicyClass, WorkloadKind};

fn main() {
    // A small cross-device job: 20 clients, 5 per round, ResNet-18.
    let job = FlJobConfig {
        rounds: 20,
        ..FlJobConfig::quick_test(JobId::new(1))
    };
    println!(
        "job: {} | model {} ({:.1} MB) | {} clients, {}/round, {} rounds\n",
        job.job,
        job.model.name,
        job.model.size_mb,
        job.total_clients,
        job.clients_per_round,
        job.rounds
    );

    // FLStore and the ObjStore-Agg baseline ingest the same rounds.
    let mut store = FlStore::new(
        FlStoreConfig::for_model(&job.model),
        Box::new(TailoredPolicy::new()),
        job.job,
        job.model,
    );
    let mut baseline = AggregatorBaseline::new(
        AggregatorConfig::objstore_agg(),
        job.job,
        job.model,
        SimTime::ZERO,
    );

    let mut now = SimTime::ZERO;
    let mut last_record = None;
    for record in FlJobSim::new(job.clone()) {
        store.ingest_round(now, &record);
        baseline.ingest_round(now, &record);
        last_record = Some(record);
        now += SimDuration::from_secs(120);
    }
    let last = last_record.expect("job ran");

    println!(
        "{:<22} {:>14} {:>14} {:>12} {:>12}",
        "workload", "FLStore lat", "ObjStore lat", "FLStore $", "ObjStore $"
    );
    let mut id = 0u64;
    for kind in WorkloadKind::ALL {
        id += 1;
        now += SimDuration::from_secs(60); // dashboard cadence
        let client = match kind.policy_class() {
            PolicyClass::P3AcrossRounds => Some(last.updates[0].client),
            _ => None,
        };
        let request = WorkloadRequest::new(RequestId::new(id), kind, job.job, last.round, client);
        let fl = store.serve(now, &request).expect("FLStore serves");
        let (_, base) = baseline.serve(now, &request).expect("baseline serves");
        println!(
            "{:<22} {:>14} {:>14} {:>12} {:>12}",
            kind.label(),
            format!("{}", fl.measured.latency.total()),
            format!("{}", base.latency.total()),
            format!("{}", fl.measured.cost.total()),
            format!("{}", base.cost.total()),
        );
    }

    println!(
        "\nFLStore hit rate: {:.1}% over {} requests ({} objects cached on {} functions)",
        store.ledger().hit_rate() * 100.0,
        store.ledger().len(),
        store.engine().len(),
        store.platform().instance_count(),
    );
}
