//! Tailored vs. traditional caching policies on a live trace
//! (the paper's Fig. 11 / Table 2 in miniature).
//!
//! Run with:
//! ```sh
//! cargo run --release --example policy_showdown
//! ```

use flstore_suite::fl::ids::JobId;
use flstore_suite::fl::job::FlJobConfig;
use flstore_suite::trace::driver::{drive, TraceConfig};
use flstore_suite::trace::scenario::{flstore_for, PolicyVariant};

fn main() {
    let job = FlJobConfig {
        rounds: 40,
        total_clients: 30,
        clients_per_round: 10,
        ..FlJobConfig::quick_test(JobId::new(5))
    };
    // One request per round: every request targets a *fresh* round, the
    // FL pattern behind the paper's Table 2 (reactive caches never hold
    // data they have not seen accessed).
    let trace = TraceConfig {
        requests: job.rounds as usize,
        ..TraceConfig::smoke(11)
    };

    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>12}",
        "policy", "hit rate", "mean lat", "p99 lat", "mean $/req"
    );
    for variant in [
        PolicyVariant::Tailored,
        PolicyVariant::Limited,
        PolicyVariant::Lru,
        PolicyVariant::Fifo,
        PolicyVariant::Lfu,
        PolicyVariant::Random,
        PolicyVariant::Static,
    ] {
        let mut store = flstore_for(&job, variant, 42);
        let report = drive(&mut store, &job, &trace);
        let lat = report.latency_summary().expect("requests served");
        let cost = report.amortized_cost_summary().expect("requests served");
        println!(
            "{:<18} {:>9.1}% {:>11.2}s {:>11.2}s {:>12}",
            variant.label(),
            report.hit_rate() * 100.0,
            lat.mean,
            lat.p99,
            flstore_suite::sim::cost::Cost::from_dollars(cost.mean),
        );
    }
    println!("\nEvery request targets the freshest round, so reactive policies");
    println!("(LRU/FIFO/LFU/Random) never hold the data beforehand, while the");
    println!("tailored policy pre-positions exactly what the next request needs.");
}
