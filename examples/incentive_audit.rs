//! Post-training incentive audit.
//!
//! The paper's motivating pain point: incentive distribution and
//! accountability run *after* training ends, so conventional frameworks
//! must keep the aggregator and cache running. FLStore serves these
//! requests from on-demand serverless functions instead.
//!
//! This audit distributes payouts for the final rounds, computes reputation
//! traces for the top earners, and compares what a week of post-training
//! audit availability costs on each architecture.
//!
//! Run with:
//! ```sh
//! cargo run --release --example incentive_audit
//! ```

use flstore_suite::baselines::agg::{AggregatorBaseline, AggregatorConfig};
use flstore_suite::fl::ids::JobId;
use flstore_suite::fl::job::{FlJobConfig, FlJobSim};
use flstore_suite::sim::time::{SimDuration, SimTime};
use flstore_suite::store::policy::TailoredPolicy;
use flstore_suite::store::store::{FlStore, FlStoreConfig};
use flstore_suite::workloads::outputs::WorkloadOutput;
use flstore_suite::workloads::request::{RequestId, WorkloadRequest};
use flstore_suite::workloads::taxonomy::WorkloadKind;

fn main() {
    let job = FlJobConfig {
        rounds: 25,
        total_clients: 30,
        clients_per_round: 10,
        ..FlJobConfig::quick_test(JobId::new(3))
    };

    let mut store = FlStore::new(
        FlStoreConfig::for_model(&job.model),
        Box::new(TailoredPolicy::new()),
        job.job,
        job.model,
    );
    let mut baseline = AggregatorBaseline::new(
        AggregatorConfig::cache_agg(job.round_metadata_bytes() * u64::from(job.rounds)),
        job.job,
        job.model,
        SimTime::ZERO,
    );

    let mut now = SimTime::ZERO;
    let mut records = Vec::new();
    for record in FlJobSim::new(job.clone()) {
        store.ingest_round(now, &record);
        baseline.ingest_round(now, &record);
        records.push(record);
        now += SimDuration::from_secs(60);
    }
    let training_done = now;
    let last = records.last().expect("job ran");

    // 1. Distribute the final round's incentives.
    let incentives = WorkloadRequest::new(
        RequestId::new(1),
        WorkloadKind::Incentives,
        job.job,
        last.round,
        None,
    );
    let served = store.serve(now, &incentives).expect("servable");
    let WorkloadOutput::Incentives(payouts) = &served.outcome.output else {
        unreachable!("incentives request returns payouts");
    };
    let mut ranked = payouts.payouts.clone();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("payouts are finite"));
    println!("final-round payouts (budget {} credits):", payouts.budget);
    for (client, credit) in ranked.iter().take(5) {
        println!("  {client}: {credit:.2} credits");
    }

    // 2. Reputation trace for the top earner (a P3 audit days later).
    now += SimDuration::from_hours(24);
    let top = ranked[0].0;
    let reputation = WorkloadRequest::new(
        RequestId::new(2),
        WorkloadKind::ReputationCalc,
        job.job,
        last.round,
        Some(top),
    );
    let served = store.serve(now, &reputation).expect("servable");
    let WorkloadOutput::Reputation(rep) = &served.outcome.output else {
        unreachable!("reputation request returns a trace");
    };
    println!(
        "\n{top} reputation {:.3} over {} audited rounds (request latency {})",
        rep.reputation,
        rep.history.len(),
        served.measured.latency.total()
    );

    // 3. What does a week of audit availability cost?
    let week_later = training_done + SimDuration::from_hours(168);
    let fl_cost = store.total_cost(week_later);
    let base_cost = baseline.total_cost(week_later);
    println!("\ncost of one week of post-training audit availability:");
    println!("  FLStore   : {}", fl_cost.total());
    println!(
        "  Cache-Agg : {} (aggregator + cache cluster stay up)",
        base_cost.total()
    );
    println!(
        "  reduction : {:.1}%",
        flstore_suite::sim::stats::reduction_pct(
            base_cost.total().as_dollars(),
            fl_cost.total().as_dollars()
        )
    );
}
