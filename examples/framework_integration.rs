//! Integrating FLStore into an existing FL framework (paper Appendix A).
//!
//! The paper stresses that FLStore is modular: training proceeds unchanged,
//! and the aggregator simply relays each round's metadata to FLStore, which
//! then owns every non-training request. This example wires FLStore into a
//! minimal Flower-like framework: strategy callbacks around a round loop.
//!
//! Run with:
//! ```sh
//! cargo run --release --example framework_integration
//! ```

use flstore_suite::fl::ids::JobId;
use flstore_suite::fl::job::{FlJobConfig, FlJobSim, RoundRecord};
use flstore_suite::sim::time::{SimDuration, SimTime};
use flstore_suite::store::api::{Request, Response, Service};
use flstore_suite::store::policy::TailoredPolicy;
use flstore_suite::store::store::{FlStore, FlStoreConfig, ServedRequest};
use flstore_suite::workloads::request::{RequestId, WorkloadRequest};
use flstore_suite::workloads::taxonomy::WorkloadKind;

/// A minimal FL framework: round loop + strategy hooks, oblivious to
/// storage concerns (stand-in for Flower/FedML/IBMFL).
struct MiniFramework<S: Strategy> {
    strategy: S,
    clock: SimTime,
}

/// Framework strategy callbacks (the integration surface).
trait Strategy {
    /// Called after each aggregation with the full round record.
    fn on_round_complete(&mut self, now: SimTime, record: &RoundRecord);
    /// Called when an operator issues a non-training query.
    fn on_operator_query(
        &mut self,
        now: SimTime,
        request: &WorkloadRequest,
    ) -> Option<ServedRequest>;
}

/// The FLStore sidecar: the entire integration is two method calls.
struct FlStoreSidecar {
    store: FlStore,
}

impl Strategy for FlStoreSidecar {
    fn on_round_complete(&mut self, now: SimTime, record: &RoundRecord) {
        // Asynchronous relay of the aggregator's metadata (paper App. A)
        // through the typed front door: training latency is untouched.
        let job = self.store.catalog().job();
        self.store.submit(
            now,
            Request::Ingest {
                job,
                record: std::sync::Arc::new(record.clone()),
            },
        );
    }

    fn on_operator_query(
        &mut self,
        now: SimTime,
        request: &WorkloadRequest,
    ) -> Option<ServedRequest> {
        match self.store.submit(now, Request::Serve(*request)) {
            Response::Served(served) => Some(*served),
            // A real integration would surface the typed ApiError here.
            _ => None,
        }
    }
}

impl<S: Strategy> MiniFramework<S> {
    fn run_training(&mut self, job: FlJobConfig) -> Vec<RoundRecord> {
        let mut records = Vec::new();
        for record in FlJobSim::new(job) {
            // ... client selection, local training, aggregation happen here ...
            self.strategy.on_round_complete(self.clock, &record);
            records.push(record);
            self.clock += SimDuration::from_secs(90);
        }
        records
    }
}

fn main() {
    let job = FlJobConfig {
        rounds: 15,
        ..FlJobConfig::quick_test(JobId::new(9))
    };
    let sidecar = FlStoreSidecar {
        store: FlStore::new(
            FlStoreConfig::for_model(&job.model),
            Box::new(TailoredPolicy::new()),
            job.job,
            job.model,
        ),
    };
    let mut framework = MiniFramework {
        strategy: sidecar,
        clock: SimTime::ZERO,
    };

    println!(
        "training {} rounds with the FLStore sidecar attached...",
        job.rounds
    );
    let records = framework.run_training(job.clone());
    let last = records.last().expect("trained");

    // Operator dashboards fire non-training queries mid-flight.
    for (i, kind) in [
        WorkloadKind::Inference,
        WorkloadKind::CosineSimilarity,
        WorkloadKind::SchedulingPerf,
    ]
    .into_iter()
    .enumerate()
    {
        let request = WorkloadRequest::new(
            RequestId::new(i as u64 + 1),
            kind,
            job.job,
            last.round,
            None,
        );
        let now = framework.clock;
        match framework.strategy.on_operator_query(now, &request) {
            Some(served) => println!(
                "  {:<18} -> {} ({} hits, {} misses)",
                kind.label(),
                served.measured.latency.total(),
                served.measured.cache_hits,
                served.measured.cache_misses
            ),
            None => println!("  {:<18} -> unavailable", kind.label()),
        }
    }

    // The same front door answers admission and telemetry envelopes.
    let now = framework.clock;
    let foreign = WorkloadRequest::new(
        RequestId::new(99),
        WorkloadKind::Inference,
        JobId::new(42),
        last.round,
        None,
    );
    if let Response::Rejected(err) = framework
        .strategy
        .store
        .submit(now, Request::Serve(foreign))
    {
        println!("\nforeign-job query rejected at admission: {err}");
    }
    if let Response::Stats(stats) = framework.strategy.store.submit(now, Request::Stats) {
        println!(
            "front-door stats: {} served, hit rate {:.2}",
            stats.served, stats.hit_rate
        );
    }

    println!(
        "\nintegration surface: 2 callbacks; training loop modifications: none; \
         cached objects: {}",
        framework.strategy.store.engine().len()
    );
}
