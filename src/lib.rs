//! # flstore-suite — the FLStore reproduction, under one roof
//!
//! A Rust reproduction of *FLStore: Efficient Federated Learning Storage
//! for non-training workloads* (MLSys 2025): a serverless framework that
//! unifies the data and compute planes for FL's non-training workloads —
//! scheduling, personalization, clustering, debugging, incentivization,
//! reputation, filtering, similarity analysis, and inference.
//!
//! This facade re-exports every workspace crate under a stable module path:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`sim`] | `flstore-sim` | virtual clock, RNG, queueing, accounting |
//! | [`cloud`] | `flstore-cloud` | object store, memcache, VMs, pricing |
//! | [`serverless`] | `flstore-serverless` | function platform simulator |
//! | [`fl`] | `flstore-fl` | model zoo, job simulator, metadata |
//! | [`workloads`] | `flstore-workloads` | Table-1 taxonomy + 10 workloads |
//! | [`store`] | `flstore-core` | FLStore: engine, tracker, policies |
//! | [`baselines`] | `flstore-baselines` | ObjStore-Agg, Cache-Agg |
//! | [`exec`] | `flstore-exec` | sharded concurrent executor |
//! | [`cluster`] | `flstore-cluster` | replica sets, failover, node recovery |
//! | [`net`] | `flstore-net` | wire protocol + TCP front door |
//! | [`loadgen`] | `flstore-loadgen` | socket-level load generators |
//! | [`trace`] | `flstore-trace` | traces, drivers, scenarios |
//!
//! ## Quickstart
//!
//! ```
//! use flstore_suite::fl::ids::JobId;
//! use flstore_suite::fl::job::{FlJobConfig, FlJobSim};
//! use flstore_suite::sim::time::{SimDuration, SimTime};
//! use flstore_suite::store::policy::TailoredPolicy;
//! use flstore_suite::store::store::{FlStore, FlStoreConfig};
//! use flstore_suite::workloads::request::{RequestId, WorkloadRequest};
//! use flstore_suite::workloads::taxonomy::WorkloadKind;
//!
//! let cfg = FlJobConfig::quick_test(JobId::new(1));
//! let mut store = FlStore::new(
//!     FlStoreConfig::for_model(&cfg.model),
//!     Box::new(TailoredPolicy::new()),
//!     cfg.job,
//!     cfg.model,
//! );
//! let mut now = SimTime::ZERO;
//! let mut last = None;
//! for record in FlJobSim::new(cfg.clone()) {
//!     store.ingest_round(now, &record);
//!     last = Some(record.round);
//!     now += SimDuration::from_secs(60);
//! }
//! let request = WorkloadRequest::new(
//!     RequestId::new(1),
//!     WorkloadKind::Inference,
//!     cfg.job,
//!     last.unwrap(),
//!     None,
//! );
//! let served = store.serve(now, &request).expect("cached aggregate");
//! assert_eq!(served.measured.cache_misses, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use flstore_baselines as baselines;
pub use flstore_cloud as cloud;
pub use flstore_cluster as cluster;
pub use flstore_core as store;
pub use flstore_exec as exec;
pub use flstore_fl as fl;
pub use flstore_loadgen as loadgen;
pub use flstore_net as net;
pub use flstore_serverless as serverless;
pub use flstore_sim as sim;
pub use flstore_trace as trace;
pub use flstore_workloads as workloads;
