//! Offline stand-in for `serde_json`.
//!
//! Re-exports the value model from the `serde` stand-in and adds the JSON
//! text layer: `to_vec` / `to_string` / `to_string_pretty`, `from_slice` /
//! `from_str`, and the `json!` macro.

#![forbid(unsafe_code)]

pub use serde::json::{Error, Map, Number, Value};

mod parse;
mod print;

/// Converts any serializable value into a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes to a compact JSON byte vector.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(print::compact(&value.to_value()).into_bytes())
}

/// Serializes to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::compact(&value.to_value()))
}

/// Serializes to a human-readable JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::pretty(&value.to_value()))
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::custom(e.to_string()))?;
    from_str(text)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text)?;
    T::from_value(&value)
}

/// Builds a [`Value`] from JSON-like syntax.
///
/// Supports the forms this workspace uses: object literals with string-literal
/// keys, array literals, `null` / `true` / `false`, and arbitrary serializable
/// expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(clippy::vec_init_then_push)]
        {
            #[allow(unused_mut)]
            let mut __arr: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
            $crate::json_elems!(__arr ( $($tt)* ));
            $crate::Value::Array(__arr)
        }
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __map = $crate::Map::new();
        $crate::json_entries!(__map ( $($tt)* ));
        $crate::Value::Object(__map)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal: munches `key: value` object entries.
#[doc(hidden)]
#[macro_export]
macro_rules! json_entries {
    ($map:ident ()) => {};
    ($map:ident ($key:literal : null $(, $($rest:tt)*)?)) => {
        $map.insert(::std::string::String::from($key), $crate::Value::Null);
        $( $crate::json_entries!($map ($($rest)*)); )?
    };
    ($map:ident ($key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?)) => {
        $map.insert(::std::string::String::from($key), $crate::json!({ $($inner)* }));
        $( $crate::json_entries!($map ($($rest)*)); )?
    };
    ($map:ident ($key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?)) => {
        $map.insert(::std::string::String::from($key), $crate::json!([ $($inner)* ]));
        $( $crate::json_entries!($map ($($rest)*)); )?
    };
    ($map:ident ($key:literal : $val:expr , $($rest:tt)*)) => {
        $map.insert(::std::string::String::from($key), $crate::to_value(&$val));
        $crate::json_entries!($map ($($rest)*));
    };
    ($map:ident ($key:literal : $val:expr)) => {
        $map.insert(::std::string::String::from($key), $crate::to_value(&$val));
    };
}

/// Internal: munches array elements.
#[doc(hidden)]
#[macro_export]
macro_rules! json_elems {
    ($arr:ident ()) => {};
    ($arr:ident (null $(, $($rest:tt)*)?)) => {
        $arr.push($crate::Value::Null);
        $( $crate::json_elems!($arr ($($rest)*)); )?
    };
    ($arr:ident ({ $($inner:tt)* } $(, $($rest:tt)*)?)) => {
        $arr.push($crate::json!({ $($inner)* }));
        $( $crate::json_elems!($arr ($($rest)*)); )?
    };
    ($arr:ident ([ $($inner:tt)* ] $(, $($rest:tt)*)?)) => {
        $arr.push($crate::json!([ $($inner)* ]));
        $( $crate::json_elems!($arr ($($rest)*)); )?
    };
    ($arr:ident ($val:expr , $($rest:tt)*)) => {
        $arr.push($crate::to_value(&$val));
        $crate::json_elems!($arr ($($rest)*));
    };
    ($arr:ident ($val:expr)) => {
        $arr.push($crate::to_value(&$val));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let rows = vec![1u64, 2, 3];
        let v = json!({
            "name": "fig7",
            "nested": { "mean": 1.5, "flag": true },
            "rows": rows,
            "list": [1, { "x": null }],
        });
        assert_eq!(v["name"].as_str(), Some("fig7"));
        assert_eq!(v["nested"]["mean"].as_f64(), Some(1.5));
        assert_eq!(v["rows"][2].as_u64(), Some(3));
        assert!(v["list"][1]["x"].is_null());
        assert!(v["missing"].is_null());
    }

    #[test]
    fn round_trips_through_text() {
        let v = json!({ "a": [1, 2.5, "s\"tr", false, null], "b": { "c": -3 } });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);

        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: Value = from_str(r#"{"k": "a\n\tA\\"}"#).unwrap();
        assert_eq!(v["k"].as_str(), Some("a\n\tA\\"));
    }
}
