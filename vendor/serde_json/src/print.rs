//! JSON text output: compact and pretty printers.

use crate::{Number, Value};
use std::fmt::Write;

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::U(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                // Keep integral floats readable and round-trippable.
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
    }
}

fn write_compact(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    const STEP: &str = "  ";
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Renders `value` without whitespace.
pub fn compact(value: &Value) -> String {
    let mut out = String::new();
    write_compact(&mut out, value);
    out
}

/// Renders `value` with two-space indentation.
pub fn pretty(value: &Value) -> String {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    out
}
