//! A small recursive-descent JSON parser.

use crate::{Error, Map, Number, Value};

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(Error::custom(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject them explicitly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::custom("unsupported \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F(v)))
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}
