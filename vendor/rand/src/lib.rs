//! Offline stand-in for the `rand` crate (0.8-style API subset).
//!
//! [`rngs::StdRng`] is a xoshiro256++ generator (not ChaCha12 like the real
//! crate — the workspace only requires determinism and statistical quality,
//! not bit-compatibility with crates.io `rand`).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random number generation.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from all bit patterns (the `Standard`
/// distribution of real rand).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 24) as u8
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <f64 as Standard>::sample(rng) as $t;
                let v = self.start + u * (self.end - self.start);
                // Rounding in the cast or the multiply can land exactly on
                // `end`; the Range contract is half-open, so nudge below it.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, RANGE: SampleRange<T>>(&mut self, range: RANGE) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; splitmix of any seed
            // cannot produce four zeros, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(2..7);
            assert!((2..7).contains(&x));
            let y: usize = rng.gen_range(0..=3);
            assert!(y <= 3);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
