//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's panic-free (non-poisoning)
//! API: `read()` / `write()` / `lock()` return guards directly. A poisoned
//! std lock is recovered by taking the inner guard, matching parking_lot's
//! behavior of not propagating poison.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock that does not poison.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(_) => panic!("poisoned RwLock with unrecoverable inner reference"),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("data", &&*self.read())
            .finish()
    }
}

/// A mutex that does not poison.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex")
            .field("data", &&*self.lock())
            .finish()
    }
}
