//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's panic-free (non-poisoning)
//! API: `read()` / `write()` / `lock()` return guards directly. A poisoned
//! std lock is recovered by taking the inner guard, matching parking_lot's
//! behavior of not propagating poison.
//!
//! # Lock-order deadlock detection (`lock-order` feature)
//!
//! With the `lock-order` feature enabled, every lock gets an id (and,
//! via [`Mutex::named`] / [`RwLock::named`], a human-readable name), each
//! thread keeps a stack of the locks it currently holds, and every
//! acquisition records `held -> acquiring` edges into a global
//! acquisition-order graph. If an acquisition would close a cycle in that
//! graph — two threads taking the same pair of locks in opposite orders —
//! the acquiring thread panics *before blocking*, printing both witness
//! stacks: the current thread's held locks and the prior thread's stack
//! that recorded the opposite order. The thread panics instead of
//! deadlocking, so the test harness sees a failure instead of a hang.
//!
//! Without the feature, all instrumentation compiles away: the `named`
//! constructors still exist (so call sites need no cfg), but guards carry
//! no extra state and acquisition is exactly a `std::sync` lock call.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

#[cfg(feature = "lock-order")]
pub mod order;

#[cfg(feature = "lock-order")]
use order::LockId;

/// A reader-writer lock that does not poison.
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lock-order")]
    id: LockId,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "lock-order")]
            id: order::register(None),
            inner: sync::RwLock::new(value),
        }
    }

    /// Creates a new lock carrying a name for lock-order diagnostics.
    /// Without the `lock-order` feature this is identical to [`RwLock::new`].
    pub fn named(value: T, name: &'static str) -> Self {
        #[cfg(not(feature = "lock-order"))]
        let _ = name;
        RwLock {
            #[cfg(feature = "lock-order")]
            id: order::register(Some(name)),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        order::on_acquire(self.id, order::Kind::Shared);
        RwLockReadGuard {
            #[cfg(feature = "lock-order")]
            id: self.id,
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        order::on_acquire(self.id, order::Kind::Exclusive);
        RwLockWriteGuard {
            #[cfg(feature = "lock-order")]
            id: self.id,
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(_) => panic!("poisoned RwLock with unrecoverable inner reference"),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("data", &&*self.read())
            .finish()
    }
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-order")]
    id: LockId,
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.id);
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-order")]
    id: LockId,
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.id);
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A mutex that does not poison.
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lock-order")]
    id: LockId,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "lock-order")]
            id: order::register(None),
            inner: sync::Mutex::new(value),
        }
    }

    /// Creates a new mutex carrying a name for lock-order diagnostics.
    /// Without the `lock-order` feature this is identical to [`Mutex::new`].
    pub fn named(value: T, name: &'static str) -> Self {
        #[cfg(not(feature = "lock-order"))]
        let _ = name;
        Mutex {
            #[cfg(feature = "lock-order")]
            id: order::register(Some(name)),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lock-order")]
        order::on_acquire(self.id, order::Kind::Exclusive);
        MutexGuard {
            #[cfg(feature = "lock-order")]
            id: self.id,
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(_) => panic!("poisoned Mutex with unrecoverable inner reference"),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex")
            .field("data", &&*self.lock())
            .finish()
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-order")]
    id: LockId,
    inner: sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(feature = "lock-order")]
impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        order::on_release(self.id);
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_round_trip() {
        let m = Mutex::named(1u64, "test.m");
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);

        let rw = RwLock::named(vec![1u64], "test.rw");
        rw.write().push(2);
        assert_eq!(rw.read().len(), 2);
        assert_eq!(rw.into_inner(), vec![1, 2]);
    }

    #[test]
    fn defaults_and_debug() {
        let m: Mutex<u64> = Mutex::default();
        assert_eq!(*m.lock(), 0);
        let rw: RwLock<u64> = RwLock::default();
        assert!(format!("{rw:?}").contains("RwLock"));
        assert!(format!("{m:?}").contains("Mutex"));
    }
}
