//! The lock-order (acquisition-order) deadlock detector.
//!
//! Every lock registers an id (optionally a name). Each thread keeps a
//! stack of held locks; acquiring lock `b` while holding `a` records the
//! edge `a -> b` into a global graph, together with a *witness*: the
//! acquiring thread's name and its held-lock stack at that moment. Before
//! recording, the detector searches for a path `b ~> a` for every held
//! `a` — such a path means some earlier acquisition chain took the locks
//! in the opposite order, and the two orders can deadlock under the right
//! interleaving. The acquiring thread panics immediately (before blocking
//! on the lock), printing its own stack and the stored witness of every
//! edge along the opposing path.
//!
//! The graph is append-only for the life of the process: ordering
//! violations are detected even when the two acquisition chains never
//! overlap in time, which is exactly what makes this useful in unit tests.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock};

/// Process-unique lock identifier.
pub type LockId = usize;

/// How a lock is being (or was) acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// `RwLock::read` — re-acquiring the same lock shared is permitted.
    Shared,
    /// `Mutex::lock` / `RwLock::write` — re-acquiring panics.
    Exclusive,
}

/// The witness stored on an acquisition-order edge `a -> b`.
#[derive(Debug, Clone)]
struct Witness {
    /// Name of the thread that recorded the edge.
    thread: String,
    /// Names of the locks it held (innermost last — `a` among them).
    held: Vec<String>,
    /// Name of the lock it was acquiring (`b`).
    acquiring: String,
}

#[derive(Default)]
struct State {
    /// Lock id → display name.
    names: HashMap<LockId, String>,
    /// `a -> (b -> witness)`: `a` was held while `b` was acquired.
    /// The first witness per edge is kept.
    edges: HashMap<LockId, HashMap<LockId, Witness>>,
}

fn state() -> &'static StdMutex<State> {
    static STATE: OnceLock<StdMutex<State>> = OnceLock::new();
    STATE.get_or_init(|| StdMutex::new(State::default()))
}

thread_local! {
    /// Locks this thread currently holds, in acquisition order.
    static HELD: RefCell<Vec<(LockId, Kind)>> = const { RefCell::new(Vec::new()) };
}

/// Registers a lock, returning its id. Called from lock constructors.
pub fn register(name: Option<&'static str>) -> LockId {
    static NEXT: AtomicUsize = AtomicUsize::new(1);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    if let Some(name) = name {
        let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
        st.names.insert(id, name.to_string());
    }
    id
}

fn display_name(st: &State, id: LockId) -> String {
    st.names
        .get(&id)
        .cloned()
        .unwrap_or_else(|| format!("lock#{id}"))
}

fn current_thread_name() -> String {
    let t = std::thread::current();
    match t.name() {
        Some(n) => n.to_string(),
        None => format!("{:?}", t.id()),
    }
}

/// Depth of this thread's held-lock stack (test hook).
pub fn held_depth() -> usize {
    HELD.with(|h| h.borrow().len())
}

/// Searches `st.edges` for a path `from ~> to`; returns the edge list.
fn find_path(st: &State, from: LockId, to: LockId) -> Option<Vec<(LockId, LockId)>> {
    let mut stack = vec![from];
    let mut parent: HashMap<LockId, LockId> = HashMap::new();
    let mut seen = vec![from];
    while let Some(node) = stack.pop() {
        let Some(out) = st.edges.get(&node) else {
            continue;
        };
        // Deterministic expansion order for reproducible panic messages.
        let mut nexts: Vec<LockId> = out.keys().copied().collect();
        nexts.sort_unstable();
        for next in nexts {
            if seen.contains(&next) {
                continue;
            }
            parent.insert(next, node);
            if next == to {
                let mut path = vec![(node, next)];
                let mut cur = node;
                while cur != from {
                    let p = parent[&cur];
                    path.push((p, cur));
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            seen.push(next);
            stack.push(next);
        }
    }
    None
}

/// Called before blocking on a lock acquisition. Panics on recursive
/// exclusive acquisition and on acquisition-order inversion.
pub fn on_acquire(id: LockId, kind: Kind) {
    let held: Vec<(LockId, Kind)> = HELD.with(|h| h.borrow().clone());

    if let Some(&(_, held_kind)) = held.iter().find(|&&(h, _)| h == id) {
        if kind == Kind::Exclusive || held_kind == Kind::Exclusive {
            let st = state().lock().unwrap_or_else(|e| e.into_inner());
            panic!(
                "recursive {} acquisition of `{}` on thread `{}` would deadlock",
                if kind == Kind::Exclusive {
                    "exclusive"
                } else {
                    "shared-after-exclusive"
                },
                display_name(&st, id),
                current_thread_name()
            );
        }
        // Shared re-acquisition (read-under-read): permitted; it cannot
        // introduce a new ordering edge either, so skip the graph work.
        HELD.with(|h| h.borrow_mut().push((id, kind)));
        return;
    }

    if !held.is_empty() {
        let mut st = state().lock().unwrap_or_else(|e| e.into_inner());
        // An inversion exists if the graph already orders `id` before any
        // held lock: check *then* record, atomically under the state lock,
        // so the offending thread panics instead of blocking.
        for &(h, _) in &held {
            if let Some(path) = find_path(&st, id, h) {
                let acquiring = display_name(&st, id);
                let held_names: Vec<String> =
                    held.iter().map(|&(l, _)| display_name(&st, l)).collect();
                let mut msg = format!(
                    "lock-order inversion detected: thread `{}` is acquiring `{}` while \
                     holding [{}], but the acquisition-order graph already orders `{}` \
                     before `{}`:\n",
                    current_thread_name(),
                    acquiring,
                    held_names.join(", "),
                    acquiring,
                    display_name(&st, h),
                );
                for (a, b) in &path {
                    let w = &st.edges[a][b];
                    msg.push_str(&format!(
                        "  edge `{}` -> `{}`: thread `{}` acquired `{}` while holding [{}]\n",
                        display_name(&st, *a),
                        display_name(&st, *b),
                        w.thread,
                        w.acquiring,
                        w.held.join(", "),
                    ));
                }
                msg.push_str("both orders cannot be correct; fix the acquisition order");
                panic!("{msg}");
            }
        }
        let witness = Witness {
            thread: current_thread_name(),
            held: held.iter().map(|&(l, _)| display_name(&st, l)).collect(),
            acquiring: display_name(&st, id),
        };
        for &(h, _) in &held {
            st.edges
                .entry(h)
                .or_default()
                .entry(id)
                .or_insert_with(|| witness.clone());
        }
    }

    HELD.with(|h| h.borrow_mut().push((id, kind)));
}

/// Called from guard `Drop` impls: removes the most recent hold of `id`.
/// Runs during panic unwinding too, keeping the stack consistent after a
/// detected inversion.
pub fn on_release(id: LockId) {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&(l, _)| l == id) {
            held.remove(pos);
        }
    });
}
