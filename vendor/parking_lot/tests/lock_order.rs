//! Unit tests for the lock-order detector. They only exist with the
//! feature on (`cargo test -p parking_lot --features lock-order`); without
//! it the instrumentation compiles away and there is nothing to test.
#![cfg(feature = "lock-order")]

use std::panic::{catch_unwind, AssertUnwindSafe};

use parking_lot::{order, Mutex, RwLock};

fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
    match err.downcast::<String>() {
        Ok(s) => *s,
        Err(err) => match err.downcast::<&'static str>() {
            Ok(s) => s.to_string(),
            Err(_) => String::from("<non-string panic payload>"),
        },
    }
}

#[test]
fn opposite_orders_panic_with_both_witness_stacks() {
    let a = Mutex::named(0u64, "witness.a");
    let b = Mutex::named(0u64, "witness.b");

    // Legal chain records the edge witness.a -> witness.b.
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    assert_eq!(order::held_depth(), 0);

    // The opposite order must panic before blocking — even though the two
    // chains never overlap in time.
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _gb = b.lock();
        let _ga = a.lock();
    }))
    .expect_err("inversion must be detected");
    let msg = panic_message(err);
    assert!(msg.contains("lock-order inversion"), "{msg}");
    // Current thread's witness: acquiring a while holding b.
    assert!(
        msg.contains("acquiring `witness.a` while holding [witness.b]"),
        "{msg}"
    );
    // Stored witness of the prior, opposite-order chain.
    assert!(
        msg.contains("acquired `witness.b` while holding [witness.a]"),
        "{msg}"
    );
    // The unwind released everything the closure held.
    assert_eq!(order::held_depth(), 0);
}

#[test]
fn nested_same_order_acquisition_is_not_flagged() {
    let outer = Mutex::named(0u64, "nested.outer");
    let inner = RwLock::named(0u64, "nested.inner");
    // The same order, any number of times, from any mix of guards, is fine.
    for _ in 0..16 {
        let _g1 = outer.lock();
        let _g2 = inner.write();
    }
    {
        let _g1 = outer.lock();
        let _g2 = inner.read();
    }
    assert_eq!(order::held_depth(), 0);
}

#[test]
fn read_under_write_is_caught_as_recursive_deadlock() {
    // `read()` while holding `write()` of the same lock self-deadlocks on
    // the underlying primitive; the detector must panic instead of hang.
    let rw = RwLock::named(0u64, "rw.read_under_write");
    let g = rw.write();
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _r = rw.read();
    }))
    .expect_err("read-under-write must be detected");
    let msg = panic_message(err);
    assert!(msg.contains("shared-after-exclusive"), "{msg}");
    drop(g);
    assert_eq!(order::held_depth(), 0);
}

#[test]
fn transitive_inversion_is_detected_through_the_graph() {
    let a = Mutex::named(0u64, "chain.a");
    let b = Mutex::named(0u64, "chain.b");
    let c = Mutex::named(0u64, "chain.c");
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    {
        let _gb = b.lock();
        let _gc = c.lock();
    }
    // c -> a closes the cycle a -> b -> c.
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _gc = c.lock();
        let _ga = a.lock();
    }))
    .expect_err("transitive inversion must be detected");
    let msg = panic_message(err);
    assert!(msg.contains("chain.a"), "{msg}");
    assert!(msg.contains("edge `chain.a` -> `chain.b`"), "{msg}");
    assert!(msg.contains("edge `chain.b` -> `chain.c`"), "{msg}");
}

#[test]
fn recursive_exclusive_acquisition_panics_and_read_recursion_does_not() {
    let rw = RwLock::named(0u64, "recursive.rw");
    {
        // Shared re-acquisition is permitted (parking_lot allows it).
        let _r1 = rw.read();
        let _r2 = rw.read();
        assert_eq!(order::held_depth(), 2);
    }
    assert_eq!(order::held_depth(), 0);

    let m = Mutex::named(0u64, "recursive.m");
    let g = m.lock();
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _again = m.lock();
    }))
    .expect_err("recursive lock must panic, not deadlock");
    let msg = panic_message(err);
    assert!(msg.contains("recursive exclusive acquisition"), "{msg}");
    assert!(msg.contains("recursive.m"), "{msg}");
    drop(g);
    assert_eq!(order::held_depth(), 0);
}

#[test]
fn held_stack_survives_panic_unwind_mid_chain() {
    let a = Mutex::named(0u64, "unwind.a");
    let b = Mutex::named(0u64, "unwind.b");
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _ga = a.lock();
        let _gb = b.lock();
        panic!("application panic while holding two locks");
    }))
    .expect_err("the closure panics");
    let _ = err;
    // Guard drops during unwinding popped both holds; the locks are
    // reusable (non-poisoning) and the stack is empty.
    assert_eq!(order::held_depth(), 0);
    let _ga = a.lock();
    let _gb = b.lock();
}
