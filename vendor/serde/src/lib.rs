//! Offline stand-in for `serde`.
//!
//! The real crates.io `serde` is unavailable in this build environment, so
//! this crate provides the subset the workspace relies on with compatible
//! surface syntax: `#[derive(Serialize, Deserialize)]`, the `Serialize` /
//! `Deserialize` traits, and the `#[serde(skip, default)]` field attribute.
//!
//! Instead of serde's visitor architecture, serialization goes through a
//! concrete JSON value model ([`Value`]) defined here and re-exported by the
//! sibling `serde_json` stand-in. That is sufficient because the only data
//! format the workspace uses is JSON.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

mod impls;
pub mod json;

pub use json::{Error, Map, Number, Value};

/// A type that can be converted into the JSON [`Value`] model.
///
/// Derivable via `#[derive(Serialize)]`. Structs with named fields become
/// objects, newtype structs are transparent, unit enum variants become
/// strings, and newtype enum variants become single-key objects — matching
/// real serde's externally-tagged JSON representation.
pub trait Serialize {
    /// Converts `self` into a JSON value.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the JSON [`Value`] model.
///
/// Derivable via `#[derive(Deserialize)]`.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a JSON value.
    fn from_value(value: &Value) -> Result<Self, Error>;
}
