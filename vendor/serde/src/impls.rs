//! `Serialize` / `Deserialize` implementations for std types.

use std::collections::{BTreeMap, HashMap};

use crate::json::{Error, Number, Value};
use crate::{Deserialize, Serialize};

// ---------------------------------------------------------------- numbers

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_u64()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::U(*self as u64))
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_u64()
            .and_then(|v| usize::try_from(v).ok())
            .ok_or_else(|| Error::custom("expected usize"))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::from(*self);
                if v >= 0 {
                    Value::Number(Number::U(v as u64))
                } else {
                    Value::Number(Number::I(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_i64()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_i64()
            .and_then(|v| isize::try_from(v).ok())
            .ok_or_else(|| Error::custom("expected isize"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        // Non-finite numbers have no JSON representation; serde_json emits
        // null for them from `json!` and we follow suit.
        if self.is_finite() {
            Value::Number(Number::F(*self))
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|v| v as f32)
            .ok_or_else(|| Error::custom("expected f32"))
    }
}

// ------------------------------------------------------- bool and strings

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

// ----------------------------------------------------- references / boxes

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let arr = value.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                Ok(($($name::from_value(arr.get($idx).unwrap_or(&Value::Null))?,)+))
            }
        }
    )*};
}

impl_tuple!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
            .collect()
    }
}

// ------------------------------------------------------------------ Value

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
