//! The JSON value model shared by the `serde` and `serde_json` stand-ins.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation. A `BTreeMap` keeps serialized output deterministic.
pub type Map = BTreeMap<String, Value>;

/// A JSON number: unsigned, signed, or floating point.
///
/// Keeping the integer cases exact lets `u64` identifiers round-trip without
/// going through `f64`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A finite floating-point number.
    F(f64),
}

impl Number {
    /// The number as `f64` (always possible, maybe lossy).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// The number as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            Number::F(_) => None,
        }
    }

    /// The number as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(v) if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 => {
                Some(v as i64)
            }
            Number::F(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::U(a), Number::U(b)) => a == b,
            (Number::I(a), Number::I(b)) => a == b,
            (Number::F(a), Number::F(b)) => a == b,
            // Cross-representation integer comparisons stay exact.
            (Number::U(a), Number::I(b)) | (Number::I(b), Number::U(a)) => {
                i64::try_from(*a).map(|a| a == *b).unwrap_or(false)
            }
            (Number::U(a), Number::F(b)) | (Number::F(b), Number::U(a)) => *a as f64 == *b,
            (Number::I(a), Number::F(b)) | (Number::F(b), Number::I(a)) => *a as f64 == *b,
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list of values.
    Array(Vec<Value>),
    /// A key-value object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// True if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member lookup on objects; `None` for other value kinds.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map if it is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// `value["key"]` — `Null` when the key is missing or `self` is not an
    /// object, matching `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Error raised by deserialization or JSON parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
