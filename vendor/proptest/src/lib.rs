//! Offline stand-in for `proptest`.
//!
//! Provides the `proptest!` macro, the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map`, numeric range strategies, tuple strategies, and
//! `prop::collection::vec`. Each test runs `PROPTEST_CASES` random cases
//! (default 64) from a deterministic per-test seed. Unlike real proptest
//! there is no shrinking and inputs are not echoed on failure; instead the
//! failing case index is reported, and since sampling is deterministic per
//! test name, re-running the test replays the identical sequence.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Number of cases per property, from the `PROPTEST_CASES` environment
/// variable (default 64) — crank it up locally to stress a property
/// harder, or down for a fast edit-test loop. Unparsable or zero values
/// fall back to the default: a property that silently ran zero cases
/// would report success while testing nothing.
pub fn cases() -> u32 {
    cases_from(std::env::var("PROPTEST_CASES").ok().as_deref())
}

/// The override-parsing rule behind [`cases`], separated so it can be
/// tested without mutating the process environment (which would race
/// with sibling property tests reading it on other threads).
fn cases_from(raw: Option<&str>) -> u32 {
    raw.and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(64)
}

/// The deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds a generator from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform f64 in [0, 1).
    pub fn u01(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Uniform usize in [0, n).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        self.inner.gen_range(0..n)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (bounded retries).
    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, pred }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples");
    }
}

/// A strategy producing one fixed value (real proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.start..self.end)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.start..self.end)
            }
        }
    )*};
}

impl_float_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Acceptable length specs for [`vec()`](fn@vec): a fixed length or a range.
    pub trait IntoSizeRange {
        /// Lower and upper (exclusive) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        assert!(min < max, "empty vec size range");
        VecStrategy { element, min, max }
    }

    /// See [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.max - self.min == 1 {
                self.min
            } else {
                self.min + rng.below(self.max - self.min)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Prints which case failed when a property panics (no shrinking here, but
/// the deterministic per-test seed makes any case index reproducible).
#[doc(hidden)]
pub struct CaseReporter {
    /// Property (test function) name.
    pub name: &'static str,
    /// Zero-based case index currently executing.
    pub case: u32,
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest stand-in: property `{}` failed on case {} \
                 (deterministic per-name seed; re-running replays it)",
                self.name, self.case
            );
        }
    }
}

/// Runs each `#[test] fn name(bindings in strategies) { body }` item as a
/// sampled property.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::cases();
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..__cases {
                    let __reporter = $crate::CaseReporter {
                        name: stringify!($name),
                        case: __case,
                    };
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                    drop(__reporter);
                }
            }
        )*
    };
}

/// `prop_assert!` — plain `assert!` (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// `prop_assert_ne!` — plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy, TestRng,
    };

    /// Mirror of the `prop` module alias in real proptest's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn cases_honours_env_override_and_refuses_zero() {
        assert_eq!(crate::cases_from(Some("7")), 7);
        assert_eq!(
            crate::cases_from(Some("0")),
            64,
            "zero cases would test nothing"
        );
        assert_eq!(crate::cases_from(Some("not-a-number")), 64);
        assert_eq!(crate::cases_from(None), 64);
    }

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 1u64..100, v in prop::collection::vec(0u32..10, 2..8)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert!(v.iter().all(|e| *e < 10));
        }

        #[test]
        fn tuples_and_maps((a, b) in (0i32..5, 0i32..5).prop_map(|(x, y)| (x, x + y))) {
            prop_assert!(b >= a);
        }

        #[test]
        fn flat_map_links_dimensions(v in (1usize..6).prop_flat_map(|n| prop::collection::vec(0u8..=255, n))) {
            prop_assert!(!v.is_empty() && v.len() < 6);
        }
    }
}
