//! Derive macros for the offline `serde` stand-in.
//!
//! Implemented directly on `proc_macro` token streams (no `syn`/`quote`,
//! which are unavailable offline). Supports the shapes this workspace
//! actually uses:
//!
//! * structs with named fields (with the `#[serde(skip)]` / `#[serde(default)]`
//!   field attributes),
//! * tuple structs (single-field newtypes are transparent, wider tuples
//!   become arrays),
//! * unit structs,
//! * enums whose variants are unit or newtype (externally tagged, like
//!   real serde: `"Variant"` / `{"Variant": value}`).
//!
//! Generics are not supported and produce a compile error.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: identifier plus the serde attrs we honor.
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

/// One enum variant: identifier plus whether it carries a single payload.
struct Variant {
    name: String,
    newtype: bool,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error tokens")
}

/// Extracts `skip` / `default` flags from one `#[serde(...)]` attribute body.
fn scan_serde_attr(group: &proc_macro::Group, skip: &mut bool, default: &mut bool) {
    let mut tokens = group.stream().into_iter();
    if let Some(TokenTree::Ident(ident)) = tokens.next() {
        if ident.to_string() != "serde" {
            return;
        }
        if let Some(TokenTree::Group(args)) = tokens.next() {
            for tt in args.stream() {
                if let TokenTree::Ident(flag) = tt {
                    match flag.to_string().as_str() {
                        "skip" => *skip = true,
                        "default" => *default = true,
                        _ => {}
                    }
                }
            }
        }
    }
}

/// Parses the top of the item: attributes, visibility, `struct`/`enum`, name.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes and visibility.
    let keyword = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(ident)) => {
                let word = ident.to_string();
                match word.as_str() {
                    "pub" => {
                        // Possible `pub(crate)` style restriction.
                        if let Some(TokenTree::Group(g)) = tokens.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                tokens.next();
                            }
                        }
                    }
                    "struct" | "enum" => break word,
                    _ => return Err(format!("unexpected token `{word}`")),
                }
            }
            other => return Err(format!("unexpected token {other:?}")),
        }
    };

    let name = match tokens.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };

    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` is not supported by the offline serde derive"
            ));
        }
    }

    let shape = if keyword == "struct" {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => return Err(format!("unexpected struct body {other:?}")),
        }
    } else {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unexpected enum body {other:?}")),
        }
    };

    Ok(Item { name, shape })
}

/// Parses `name: Type, ...` fields, honoring `#[serde(skip/default)]`.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();

    'fields: loop {
        let mut skip = false;
        let mut default = false;

        // Attributes and visibility before the field name.
        let name = loop {
            match tokens.next() {
                None => break 'fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.next() {
                        scan_serde_attr(&g, &mut skip, &mut default);
                    }
                }
                Some(TokenTree::Ident(ident)) if ident.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                Some(TokenTree::Ident(ident)) => break ident.to_string(),
                Some(other) => return Err(format!("unexpected field token {other:?}")),
            }
        };

        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }

        // Skip the type up to the next comma outside angle brackets.
        let mut angle_depth = 0i32;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }

        fields.push(Field {
            name,
            skip,
            default,
        });
    }

    Ok(fields)
}

/// Counts the fields of a tuple struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

/// Parses enum variants; only unit and single-payload (newtype) supported.
fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();

    'variants: loop {
        // Attributes before the variant name.
        let name = loop {
            match tokens.next() {
                None => break 'variants,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(ident)) => break ident.to_string(),
                Some(other) => return Err(format!("unexpected variant token {other:?}")),
            }
        };

        let mut newtype = false;
        match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if count_tuple_fields(g.stream()) != 1 {
                    return Err(format!(
                        "variant `{name}`: only unit and single-field variants are supported"
                    ));
                }
                newtype = true;
                tokens.next();
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "variant `{name}`: struct variants are not supported"
                ));
            }
            _ => {}
        }

        // Trailing comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == ',' {
                tokens.next();
            }
        }

        variants.push(Variant { name, newtype });
    }

    Ok(variants)
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let name = &item.name;

    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut inserts = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                inserts.push_str(&format!(
                    "__map.insert(::std::string::String::from({:?}), \
                     ::serde::Serialize::to_value(&self.{}));\n",
                    f.name, f.name
                ));
            }
            format!("let mut __map = ::serde::Map::new();\n{inserts}::serde::Value::Object(__map)")
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                if v.newtype {
                    arms.push_str(&format!(
                        "{name}::{v} (__inner) => {{\n\
                         let mut __map = ::serde::Map::new();\n\
                         __map.insert(::std::string::String::from({v:?}), \
                         ::serde::Serialize::to_value(__inner));\n\
                         ::serde::Value::Object(__map)\n}}\n",
                        v = v.name
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(::std::string::String::from({v:?})),\n",
                        v = v.name
                    ));
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };

    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let name = &item.name;

    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip || f.default {
                    // `skip` implies reconstruction from Default, and plain
                    // `default` tolerates a missing key the same way.
                    if f.skip {
                        inits.push_str(&format!(
                            "{}: ::std::default::Default::default(),\n",
                            f.name
                        ));
                    } else {
                        inits.push_str(&format!(
                            "{n}: match __obj.get({n:?}) {{\n\
                             Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
                             None => ::std::default::Default::default(),\n}},\n",
                            n = f.name
                        ));
                    }
                } else {
                    inits.push_str(&format!(
                        "{n}: ::serde::Deserialize::from_value(\
                         __obj.get({n:?}).unwrap_or(&::serde::Value::Null))?,\n",
                        n = f.name
                    ));
                }
            }
            format!(
                "let __obj = __value.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Shape::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(\
                         __arr.get({i}).unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "let __arr = __value.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Shape::Unit => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut newtype_arms = String::new();
            for v in variants {
                if v.newtype {
                    newtype_arms.push_str(&format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n",
                        v = v.name
                    ));
                } else {
                    unit_arms.push_str(&format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    ));
                }
            }
            format!(
                "if let Some(__s) = __value.as_str() {{\n\
                 return match __s {{\n{unit_arms}\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"unknown variant of {name}\")),\n}};\n}}\n\
                 if let Some(__obj) = __value.as_object() {{\n\
                 if let Some((__tag, __inner)) = __obj.iter().next() {{\n\
                 return match __tag.as_str() {{\n{newtype_arms}\
                 _ => ::std::result::Result::Err(::serde::Error::custom(\
                 \"unknown variant of {name}\")),\n}};\n}}\n}}\n\
                 ::std::result::Result::Err(::serde::Error::custom(\
                 \"expected {name} variant\"))"
            )
        }
    };

    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
