//! Offline stand-in for `criterion`.
//!
//! Benchmarks run with `cargo bench` through `criterion_group!` /
//! `criterion_main!` exactly like the real crate, but the statistics are
//! simpler: each benchmark is warmed up, calibrated to a target sample
//! duration, then timed for `sample_size` samples; mean, best, and the
//! p50/p95/p99 per-sample tail are printed (percentiles are nearest-rank
//! over the per-sample ns/iter values, so p99 needs a sample size large
//! enough to resolve it — with the default 20 samples p95 and p99 land on
//! the slowest sample).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            group: name.to_string(),
            sample_size: self.sample_size,
        }
    }

    /// Registers a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.group, name);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Ends the group (marker for API compatibility).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Calibration pass: find an iteration count that takes ≥ ~2 ms so timer
    // granularity does not dominate, capped to keep total runtime bounded.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters *= 8;
    }

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    let mean = samples.iter().sum::<f64>() / sample_size as f64;
    samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let best = samples[0];
    println!(
        "  {label:<40} mean {:>12} best {:>12} p50 {:>12} p95 {:>12} p99 {:>12} ({iters} iters/sample)",
        fmt_ns(mean),
        fmt_ns(best),
        fmt_ns(percentile(&samples, 50.0)),
        fmt_ns(percentile(&samples, 95.0)),
        fmt_ns(percentile(&samples, 99.0)),
    );
}

/// Nearest-rank percentile over sorted per-sample values.
fn percentile(sorted: &[f64], pct: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (pct / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Times closures for one sample.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iterations.
    // Measuring real elapsed time is this harness's entire job; the
    // workspace-wide wall-clock ban (clippy.toml) stops everywhere else.
    #[allow(clippy::disallowed_methods)]
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` with a fresh untimed `setup` product per iteration.
    #[allow(clippy::disallowed_methods)]
    pub fn iter_with_setup<S, O, SF: FnMut() -> S, R: FnMut(S) -> O>(
        &mut self,
        mut setup: SF,
        mut routine: R,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Defines a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
