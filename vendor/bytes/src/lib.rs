//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply cloneable, immutable byte buffer backed by
//! `Arc<[u8]>`; [`BytesMut`] is a growable buffer that freezes into one.
//! Only the API surface this workspace uses is provided.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Wraps a static byte slice (copied; lifetimes are not tracked).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes { data: Arc::from(bytes) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_round_trip() {
        let mut buf = BytesMut::with_capacity(8);
        buf.extend_from_slice(b"abc");
        let frozen = buf.freeze();
        assert_eq!(&frozen[..], b"abc");
        assert_eq!(frozen, Bytes::from_static(b"abc"));
        assert_eq!(frozen.clone(), frozen);
        assert!(Bytes::new().is_empty());
    }
}
