//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply cloneable, immutable byte buffer: a refcounted
//! (or `'static`-borrowed) storage plus an `(offset, len)` view into it.
//! `from_static`, `clone`, and `slice` never copy the underlying buffer —
//! matching the upstream crate's zero-copy semantics. [`BytesMut`] is a
//! growable buffer that freezes into one. Only the API surface this
//! workspace uses is provided.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Backing storage of a [`Bytes`] view.
#[derive(Clone)]
enum Storage {
    /// A `'static` slice, borrowed for the program's lifetime (no copy,
    /// no refcount).
    Static(&'static [u8]),
    /// A shared heap buffer; clones bump the refcount.
    Shared(Arc<[u8]>),
}

impl Storage {
    fn as_slice(&self) -> &[u8] {
        match self {
            Storage::Static(s) => s,
            Storage::Shared(a) => a,
        }
    }
}

/// An immutable, cheaply cloneable byte buffer.
///
/// Clones and subslices share one backing buffer; only the view bounds
/// differ. Two views are `==` when their visible bytes match, regardless
/// of backing identity.
#[derive(Clone)]
pub struct Bytes {
    storage: Storage,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes::from_static(&[])
    }

    /// Borrows a static byte slice for the program's lifetime. Zero-copy:
    /// the returned buffer points at `bytes` itself.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            storage: Storage::Static(bytes),
            offset: 0,
            len: bytes.len(),
        }
    }

    /// Copies a slice into a new shared buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes {
            len: bytes.len(),
            storage: Storage::Shared(Arc::from(bytes)),
            offset: 0,
        }
    }

    /// Length in bytes of this view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies the visible contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a zero-copy subslice of this view: the result shares the
    /// backing buffer (refcounted for heap storage, borrowed for static).
    ///
    /// # Panics
    ///
    /// Panics when the range falls outside `0..=len` or is inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice range {start}..{end} out of bounds for Bytes of length {}",
            self.len
        );
        Bytes {
            storage: self.storage.clone(),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// True when `self` and `other` are views into the same backing buffer
    /// with identical bounds — i.e. they are literally the same bytes in
    /// memory, not merely equal contents.
    pub fn ptr_eq(&self, other: &Bytes) -> bool {
        std::ptr::eq(
            self.as_slice() as *const [u8],
            other.as_slice() as *const [u8],
        )
    }

    fn as_slice(&self) -> &[u8] {
        &self.storage.as_slice()[self.offset..self.offset + self.len]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            len: v.len(),
            storage: Storage::Shared(Arc::from(v.into_boxed_slice())),
            offset: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] (takes over the allocation; no
    /// copy beyond `Vec`'s shrink-to-fit move).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freeze_round_trip() {
        let mut buf = BytesMut::with_capacity(8);
        buf.extend_from_slice(b"abc");
        let frozen = buf.freeze();
        assert_eq!(&frozen[..], b"abc");
        assert_eq!(frozen, Bytes::from_static(b"abc"));
        assert_eq!(frozen.clone(), frozen);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn from_static_borrows_without_copying() {
        static PAYLOAD: &[u8] = b"zero-copy static payload";
        let b = Bytes::from_static(PAYLOAD);
        // The view points at the static data itself — no buffer was
        // allocated or copied.
        assert!(std::ptr::eq(b.as_ref().as_ptr(), PAYLOAD.as_ptr()));
        let c = b.clone();
        assert!(b.ptr_eq(&c));
    }

    #[test]
    fn clone_shares_heap_storage() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        assert_eq!(a, b);
    }

    #[test]
    fn slice_is_zero_copy() {
        let a = Bytes::from(b"hello world".to_vec());
        let hello = a.slice(0..5);
        let world = a.slice(6..);
        assert_eq!(&hello[..], b"hello");
        assert_eq!(&world[..], b"world");
        // Subslices point into the parent's buffer.
        assert!(std::ptr::eq(hello.as_ref().as_ptr(), a.as_ref().as_ptr()));
        assert!(std::ptr::eq(
            world.as_ref().as_ptr(),
            a.as_ref()[6..].as_ptr()
        ));
        // Slicing a slice composes offsets.
        let ell = hello.slice(1..4);
        assert_eq!(&ell[..], b"ell");
        // Full-range slice is ptr-identical to the original.
        assert!(a.slice(..).ptr_eq(&a));
    }

    #[test]
    fn slice_of_static_is_zero_copy() {
        static PAYLOAD: &[u8] = b"0123456789";
        let a = Bytes::from_static(PAYLOAD);
        let mid = a.slice(2..=5);
        assert_eq!(&mid[..], b"2345");
        assert!(std::ptr::eq(mid.as_ref().as_ptr(), PAYLOAD[2..].as_ptr()));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let a = Bytes::from_static(b"abc");
        let _ = a.slice(1..5);
    }

    #[test]
    fn equality_is_by_contents_not_identity() {
        let a = Bytes::from(b"same".to_vec());
        let b = Bytes::copy_from_slice(b"same");
        assert_eq!(a, b);
        assert!(!a.ptr_eq(&b));
    }
}
